package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"lsmlab/internal/events"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// checkPaired asserts that every begin event in evs has exactly one
// matching end event with the same JobID appearing later in the stream,
// and returns the number of begin/end pairs per begin type.
func checkPaired(t *testing.T, evs []events.Event) map[events.Type]int {
	t.Helper()
	pairs := make(map[events.Type]int)
	open := make(map[uint64]events.Type) // jobID → begin type
	for i, e := range evs {
		switch e.Type {
		case events.FlushBegin, events.CompactionBegin:
			if prev, dup := open[e.JobID]; dup {
				t.Fatalf("event %d: job %d began twice (%v, %v)", i, e.JobID, prev, e.Type)
			}
			open[e.JobID] = e.Type
		case events.FlushEnd, events.CompactionEnd:
			begin, ok := open[e.JobID]
			if !ok {
				t.Fatalf("event %d: %v for job %d without a begin", i, e.Type, e.JobID)
			}
			if begin.End() != e.Type {
				t.Fatalf("event %d: job %d began as %v but ended as %v", i, e.JobID, begin, e.Type)
			}
			if e.DurationNs < 0 {
				t.Fatalf("event %d: negative duration %d", i, e.DurationNs)
			}
			delete(open, e.JobID)
			pairs[begin]++
		}
	}
	if len(open) != 0 {
		t.Fatalf("unmatched begin events: %v", open)
	}
	return pairs
}

// TestFlushAndCompactionEventsPaired drives enough ingestion through a
// small tree to trigger flushes and compactions and checks that the
// ring holds exactly paired begin/end events with sane payloads.
func TestFlushAndCompactionEventsPaired(t *testing.T) {
	ring := events.NewRing(4096)
	db, _ := testDB(t, func(o *Options) { o.EventListener = ring })
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i%1000)), []byte(strings.Repeat("v", 50))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	evs := ring.Events()
	pairs := checkPaired(t, evs)
	if pairs[events.FlushBegin] == 0 {
		t.Error("no flush events recorded")
	}
	if pairs[events.CompactionBegin] == 0 {
		t.Error("no compaction events recorded")
	}
	m := db.Metrics()
	// Metrics count *installed* flushes; every one of those flushed
	// something, so it must appear as a successful pair with output.
	var okFlush, okCompact int
	for _, e := range evs {
		switch e.Type {
		case events.FlushEnd:
			if e.Err == nil && e.OutputFiles > 0 {
				okFlush++
				if e.OutputBytes <= 0 {
					t.Errorf("flush with %d files reports %d bytes", e.OutputFiles, e.OutputBytes)
				}
			}
		case events.CompactionEnd:
			if e.Err == nil {
				okCompact++
				if e.InputFiles == 0 || e.InputBytes == 0 {
					t.Errorf("compaction end missing input accounting: %v", e)
				}
				if e.Reason == "" {
					t.Errorf("compaction end missing reason: %v", e)
				}
			}
		}
	}
	if int64(okFlush) != m.Flushes {
		t.Errorf("successful flush events %d != Flushes counter %d", okFlush, m.Flushes)
	}
	if int64(okCompact) != m.Compactions {
		t.Errorf("successful compaction events %d != Compactions counter %d", okCompact, m.Compactions)
	}
	// Latency histograms tracked the same jobs.
	lat := db.Latencies()
	if lat.Flush.Count() < int64(pairs[events.FlushBegin]) {
		t.Errorf("flush histogram n=%d < %d flush pairs", lat.Flush.Count(), pairs[events.FlushBegin])
	}
	if lat.Put.Count() == 0 || lat.Get.Count() != 0 {
		t.Errorf("unexpected op histograms: put=%d get=%d", lat.Put.Count(), lat.Get.Count())
	}
}

// TestFlushFailureEmitsPairedEndWithError injects a table-write fault
// (via the vfs fault hooks) and checks the failed flush still emits a
// matching FlushEnd carrying the error.
func TestFlushFailureEmitsPairedEndWithError(t *testing.T) {
	ring := events.NewRing(1024)
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.EventListener = ring
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm(faultfs.ClassSST, faultfs.OpWrite, 1)
	if err := db.Flush(); err == nil {
		t.Fatal("flush with failing device must error")
	}
	db.Close()

	evs := ring.Events()
	checkPaired(t, evs)
	var failed bool
	for _, e := range evs {
		if e.Type == events.FlushEnd && e.Err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no FlushEnd event carries the injected error")
	}
}

// TestCompactionFailureEmitsPairedEndWithError does the same for a
// compaction job whose output write fails.
func TestCompactionFailureEmitsPairedEndWithError(t *testing.T) {
	ring := events.NewRing(4096)
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.Workers = 1
	opts.EventListener = ring
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i%100)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	ffs.Arm(faultfs.ClassSST, faultfs.OpWrite, 2)
	_ = db.Compact() // error may surface here or via bgErr
	db.Close()

	evs := ring.Events()
	checkPaired(t, evs)
	var failed bool
	for _, e := range evs {
		if e.Type == events.CompactionEnd && e.Err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no CompactionEnd event carries the injected error")
	}
}

// slowSSTFS delays table-file writes so flushes lag ingestion and the
// write path is forced to stall.
type slowSSTFS struct {
	vfs.FS
	delay time.Duration
}

func (f slowSSTFS) Create(name string) (vfs.File, error) {
	file, err := f.FS.Create(name)
	if err != nil || !vfs.HasSuffix(name, ".sst") {
		return file, err
	}
	return slowFile{File: file, delay: f.delay}, nil
}

type slowFile struct {
	vfs.File
	delay time.Duration
}

func (f slowFile) Write(p []byte) (int, error) {
	time.Sleep(f.delay)
	return f.File.Write(p)
}

func TestWriteStallEventsPaired(t *testing.T) {
	ring := events.NewRing(8192)
	db, _ := testDB(t, func(o *Options) {
		o.FS = slowSSTFS{FS: vfs.NewMem(), delay: 2 * time.Millisecond}
		o.BufferBytes = 1 << 10
		o.MaxImmutableBuffers = 1
		o.EventListener = ring
	})
	for i := 0; i < 400; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var begins, ends int
	for _, e := range ring.Events() {
		switch e.Type {
		case events.WriteStallBegin:
			begins++
			if e.Reason != "immutable-buffers" && e.Reason != "l0-runs" {
				t.Errorf("stall begin has unknown reason %q", e.Reason)
			}
		case events.WriteStallEnd:
			ends++
		}
	}
	if begins == 0 {
		t.Fatal("workload produced no write stalls; slow-device setup is broken")
	}
	if begins != ends {
		t.Fatalf("stall begins %d != ends %d", begins, ends)
	}
	if got := db.Metrics().WriteStalls; got != int64(begins) {
		t.Fatalf("WriteStalls counter %d != stall begin events %d", got, begins)
	}
}

func TestWALRotatedAndCheckpointEvents(t *testing.T) {
	ring := events.NewRing(1024)
	db, _ := testDB(t, func(o *Options) { o.EventListener = ring })
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("ckpt"); err != nil {
		t.Fatal(err)
	}

	var rotations, checkpoints int
	for _, e := range ring.Events() {
		switch e.Type {
		case events.WALRotated:
			rotations++
			if e.Path == "" {
				t.Error("WALRotated without segment name")
			}
		case events.CheckpointEnd:
			checkpoints++
			if e.Err != nil || e.Path != "ckpt" {
				t.Errorf("checkpoint event wrong: %v", e)
			}
		}
	}
	// One segment at open plus at least one rotation per flush.
	if rotations < 2 {
		t.Errorf("expected ≥2 WAL rotations, got %d", rotations)
	}
	if checkpoints != 1 {
		t.Errorf("expected 1 checkpoint event, got %d", checkpoints)
	}
}

func TestVlogGCEndEvent(t *testing.T) {
	ring := events.NewRing(1024)
	db, _ := testDB(t, func(o *Options) {
		o.ValueSeparationThreshold = 64
		o.EventListener = ring
	})
	big := make([]byte, 256)
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i%10)), big); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.GCValueLog(); err != nil {
		t.Fatal(err)
	}
	var gcs int
	for _, e := range ring.Events() {
		if e.Type == events.VlogGCEnd {
			gcs++
			if e.Err != nil {
				t.Errorf("vlog GC event carries error: %v", e.Err)
			}
		}
	}
	if gcs != 1 {
		t.Fatalf("expected 1 VlogGCEnd event, got %d", gcs)
	}
}

// TestTeeListenerInEngine wires two rings through events.Tee and checks
// both observe the same stream.
func TestTeeListenerInEngine(t *testing.T) {
	r1, r2 := events.NewRing(256), events.NewRing(256)
	db, _ := testDB(t, func(o *Options) { o.EventListener = events.Tee(r1, r2) })
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if r1.Total() == 0 || r1.Total() != r2.Total() {
		t.Fatalf("tee delivered unevenly: %d vs %d", r1.Total(), r2.Total())
	}
}
