package core

import (
	"sort"

	"lsmlab/internal/compaction"
	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
	"lsmlab/internal/trace"
	"lsmlab/internal/wisckey"
)

// stripeOf returns the snapshot stripe of a sequence number: the count
// of live snapshots strictly below it. Two versions of a key in the
// same stripe are indistinguishable to every live or future reader, so
// only the newest survives compaction.
func stripeOf(seq kv.SeqNum, snapshots []kv.SeqNum) int {
	// snapshots is sorted ascending.
	lo, hi := 0, len(snapshots)
	for lo < hi {
		mid := (lo + hi) / 2
		if snapshots[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// liveSnapshots returns the active snapshot sequence numbers, ascending.
func (db *DB) liveSnapshots() []kv.SeqNum {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]kv.SeqNum, 0, len(db.snapshots))
	for seq := range db.snapshots {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// compactionIter merges the input iterators and applies the LSM
// garbage-collection rules of tutorial §2.1.2: retain the newest
// version per snapshot stripe, drop entries shadowed by tombstones or
// range tombstones within a stripe, annihilate single-deletes with
// their matching insert, and drop tombstones that reach the bottom of
// the tree with no snapshot protecting older data.
type compactionIter struct {
	src       *kv.MergingIterator
	rangeDels []kv.RangeTombstone
	snapshots []kv.SeqNum
	bottom    bool
	db        *DB

	// Current group state.
	curUK      []byte
	lastStripe int
	haveKept   bool

	// queue holds extra output entries (unfoldable merge operands) to
	// drain before consuming more input.
	queue []kv.Entry

	key, value []byte
	valid      bool
	srcValid   bool
}

func newCompactionIter(src *kv.MergingIterator, rangeDels []kv.RangeTombstone, snapshots []kv.SeqNum, bottom bool, db *DB) *compactionIter {
	return &compactionIter{src: src, rangeDels: rangeDels, snapshots: snapshots, bottom: bottom, db: db}
}

// coveredByRangeDel reports whether an entry is deletable because a
// range tombstone in the same stripe shadows it.
func (ci *compactionIter) coveredByRangeDel(ukey []byte, seq kv.SeqNum) bool {
	s := stripeOf(seq, ci.snapshots)
	for _, rt := range ci.rangeDels {
		if rt.Seq > seq && rt.Covers(ukey, seq) && stripeOf(rt.Seq, ci.snapshots) == s {
			return true
		}
	}
	return false
}

// first positions at the first surviving entry.
func (ci *compactionIter) first() bool {
	ci.srcValid = ci.src.First()
	ci.curUK = nil
	return ci.next()
}

// next advances to the next surviving entry, applying all drop rules.
func (ci *compactionIter) next() bool {
	m := &ci.db.m
	if len(ci.queue) > 0 {
		e := ci.queue[0]
		ci.queue = ci.queue[1:]
		ci.emit(e.Key, e.Value, stripeOf(e.Seq(), ci.snapshots))
		return true
	}
	for ci.srcValid {
		ikey := ci.src.Key()
		ukey, seq, kind, _ := kv.ParseKey(ikey)

		if ci.curUK == nil || kv.CompareUser(ukey, ci.curUK) != 0 {
			ci.curUK = append(ci.curUK[:0], ukey...)
			ci.haveKept = false
			ci.lastStripe = -1
		}

		stripe := stripeOf(seq, ci.snapshots)

		// Older version in a stripe that already kept a newer one.
		if ci.haveKept && stripe == ci.lastStripe {
			if kind == kv.KindDelete || kind == kv.KindSingleDelete {
				m.TombstonesDropped.Add(1)
			} else {
				m.EntriesDropped.Add(1)
			}
			ci.srcValid = ci.src.Next()
			continue
		}

		// Shadowed by a same-stripe range tombstone.
		if ci.coveredByRangeDel(ukey, seq) {
			m.EntriesDropped.Add(1)
			ci.srcValid = ci.src.Next()
			continue
		}

		switch kind {
		case kv.KindMerge:
			if done := ci.foldMerge(seq, stripe); done {
				return true
			}
			continue

		case kv.KindSingleDelete:
			// Build the tombstone's key from the stable copy: advancing
			// the merged iterator below invalidates ukey, which aliases
			// the iterator's internal buffer.
			sdKey := kv.MakeKey(ci.curUK, seq, kv.KindSingleDelete)
			// Peek at the next entry: if it is the same key's next older
			// version, in the same stripe, and a plain insert, the pair
			// annihilates (RocksDB SingleDelete semantics).
			if ci.src.Next() {
				nuk, nseq, nkind, _ := kv.ParseKey(ci.src.Key())
				if kv.CompareUser(nuk, ci.curUK) == 0 &&
					stripeOf(nseq, ci.snapshots) == stripe &&
					(nkind == kv.KindSet || nkind == kv.KindValuePointer) {
					m.TombstonesDropped.Add(1)
					m.EntriesDropped.Add(1)
					ci.srcValid = ci.src.Next()
					// Both dropped; a newer-stripe entry was not kept, so
					// leave haveKept untouched for deeper (older) versions.
					continue
				}
				ci.srcValid = true
			} else {
				ci.srcValid = false
			}
			// No annihilation: the single-delete behaves like a tombstone.
			if ci.bottom && stripe == 0 {
				m.TombstonesDropped.Add(1)
				ci.haveKept = true
				ci.lastStripe = stripe
				continue
			}
			ci.emit(sdKey, nil, stripe)
			return true

		case kv.KindDelete:
			if ci.bottom && stripe == 0 {
				// Bottom of the tree, no snapshot below: the tombstone
				// has done its job and is purged (§2.1.2 Compaction).
				m.TombstonesDropped.Add(1)
				ci.haveKept = true
				ci.lastStripe = stripe
				ci.srcValid = ci.src.Next()
				continue
			}
			ci.emit(ikey, ci.src.Value(), stripe)
			ci.srcValid = ci.src.Next()
			return true

		default: // KindSet, KindValuePointer
			ci.emit(ikey, ci.src.Value(), stripe)
			ci.srcValid = ci.src.Next()
			return true
		}
	}
	ci.valid = false
	return false
}

// foldMerge handles a merge-operand chain starting at the current
// entry (§2.2.6): same-key, same-stripe operands collect until a base
// value folds them into a Set, a tombstone folds them onto nil, the
// stripe or key ends, or input runs out. Folding never crosses a
// snapshot stripe — readers at intermediate snapshots need the
// intermediate states. It reports whether an output was produced (true)
// or the caller should continue the main loop (operands were queued or
// consumed).
func (ci *compactionIter) foldMerge(firstSeq kv.SeqNum, stripe int) bool {
	m := &ci.db.m
	op := ci.db.opts.MergeOperator
	// Operand chain, newest first, keeping real sequence numbers so
	// unfolded survivors re-emit at their original positions.
	type operand struct {
		seq kv.SeqNum
		val []byte
	}
	chain := []operand{{firstSeq, cp(ci.src.Value())}}

	var base []byte
	var baseSeq kv.SeqNum
	haveBase := false
	baseIsDelete := false
	for {
		ci.srcValid = ci.src.Next()
		if !ci.srcValid {
			break
		}
		nuk, nseq, nkind, _ := kv.ParseKey(ci.src.Key())
		if kv.CompareUser(nuk, ci.curUK) != 0 || stripeOf(nseq, ci.snapshots) != stripe {
			break
		}
		if ci.coveredByRangeDel(nuk, nseq) {
			// Older history is range-deleted within this stripe: the
			// chain folds onto nil, and the covered entry drops.
			baseIsDelete, haveBase = true, true
			m.EntriesDropped.Add(1)
			ci.srcValid = ci.src.Next()
			break
		}
		if nkind == kv.KindMerge {
			chain = append(chain, operand{nseq, cp(ci.src.Value())})
			continue
		}
		switch nkind {
		case kv.KindSet:
			base, baseSeq, haveBase = cp(ci.src.Value()), nseq, true
		case kv.KindValuePointer:
			p, err := wisckey.DecodePointer(ci.src.Value())
			if err == nil {
				if v, verr := ci.db.vlog.Read(p); verr == nil {
					base, baseSeq, haveBase = v, nseq, true
				}
			}
		default: // point tombstones: fold onto nil
			baseIsDelete, haveBase = true, true
			m.TombstonesDropped.Add(1)
		}
		ci.srcValid = ci.src.Next()
		break
	}

	// Fold when a base (or definitive absence at the tree bottom) is in
	// hand and an operator exists.
	if op != nil && (haveBase || (ci.bottom && stripe == 0)) {
		operands := make([][]byte, 0, len(chain))
		for i := len(chain) - 1; i >= 0; i-- {
			operands = append(operands, chain[i].val)
		}
		var b []byte
		if !baseIsDelete {
			b = base
		}
		v, err := op.FullMerge(ci.curUK, b, operands)
		if err == nil {
			m.EntriesDropped.Add(int64(len(operands))) // operands consumed
			ci.emit(kv.MakeKey(ci.curUK, firstSeq, kv.KindSet), v, stripe)
			return true
		}
	}

	// Cannot fold: re-emit the survivors. Adjacent operands partial-
	// merge when the operator allows, keeping the newer one's seq.
	if op != nil {
		for i := 0; i+1 < len(chain); {
			if combined, ok := op.PartialMerge(ci.curUK, chain[i+1].val, chain[i].val); ok {
				chain[i].val = combined
				chain = append(chain[:i+1], chain[i+2:]...)
				m.EntriesDropped.Add(1)
			} else {
				i++
			}
		}
	}
	for _, o := range chain {
		ci.queue = append(ci.queue, kv.Entry{
			Key:   kv.MakeKey(ci.curUK, o.seq, kv.KindMerge),
			Value: o.val,
		})
	}
	// An unfoldable base (no operator, or the operator failed) survives
	// at its own position.
	if haveBase && !baseIsDelete {
		ci.queue = append(ci.queue, kv.Entry{
			Key:   kv.MakeKey(ci.curUK, baseSeq, kv.KindSet),
			Value: base,
		})
	}
	ci.haveKept = true
	ci.lastStripe = stripe
	if len(ci.queue) > 0 {
		e := ci.queue[0]
		ci.queue = ci.queue[1:]
		ci.emit(e.Key, e.Value, stripe)
		return true
	}
	return false
}

func (ci *compactionIter) emit(ikey, value []byte, stripe int) {
	ci.key = append(ci.key[:0], ikey...)
	ci.value = append(ci.value[:0], value...)
	ci.haveKept = true
	ci.lastStripe = stripe
	ci.valid = true
}

// survivingRangeDels filters the input range tombstones: at the bottom
// level with no live snapshots they are fully applied and can vanish.
func survivingRangeDels(rangeDels []kv.RangeTombstone, bottom bool, snapshots []kv.SeqNum) []kv.RangeTombstone {
	if bottom && len(snapshots) == 0 {
		return nil
	}
	return rangeDels
}

// runCompaction executes one job end to end, bracketed by
// CompactionBegin/CompactionEnd events carrying the job's shape
// (levels, input/output files and bytes, trigger reason) and timed into
// the compaction latency histogram. Every outcome emits exactly one
// matching end event.
func (db *DB) runCompaction(job *compaction.Job) error {
	var inFiles int
	for _, files := range job.Inputs {
		inFiles += len(files)
	}
	jobID := db.nextJobID()
	start := db.opts.NowNs()
	sp := db.tracer.StartRetained(trace.OpCompaction)
	db.emit(events.Event{Type: events.CompactionBegin, JobID: jobID,
		Level: job.FromLevel, ToLevel: job.ToLevel,
		InputFiles: inFiles, InputBytes: int64(job.InputBytes()),
		Reason: string(job.Reason)})
	metas, err := db.doCompaction(job)
	dur := db.opts.NowNs() - start
	db.m.CompactionNs.RecordNs(dur)
	sp.AddBytes(int64(totalBytes(metas)))
	sp.AddEntries(len(metas))
	sp.SetErr(err)
	db.tracer.Finish(sp)
	db.emit(events.Event{Type: events.CompactionEnd, JobID: jobID,
		Level: job.FromLevel, ToLevel: job.ToLevel,
		InputFiles: inFiles, InputBytes: int64(job.InputBytes()),
		OutputFiles: len(metas), OutputBytes: int64(totalBytes(metas)),
		DurationNs: dur, Reason: string(job.Reason), Err: err})
	return err
}

// doCompaction is the body of runCompaction: merge inputs, write
// outputs (throttled), install the new version, and delete obsolete
// files (tutorial §2.1.2 Compaction). It returns the installed file
// metadata for event reporting.
func (db *DB) doCompaction(job *compaction.Job) ([]*manifest.FileMeta, error) {
	var (
		iters     []kv.Iterator
		releases  []func()
		rangeDels []kv.RangeTombstone
		overall   kv.KeyRange
		inEntries int64
		inBytes   uint64
	)
	defer func() {
		for _, rel := range releases {
			rel()
		}
	}()
	for lvl, files := range job.Inputs {
		var lvlBytes int64
		for _, f := range files {
			r, release, err := db.tcache.acquire(f.Num)
			if err != nil {
				return nil, err
			}
			releases = append(releases, release)
			iters = append(iters, r.NewIterator())
			rangeDels = append(rangeDels, r.RangeTombstones()...)
			overall.Extend(f.Smallest)
			overall.Extend(f.Largest)
			inEntries += int64(f.NumEntries)
			inBytes += f.Size
			lvlBytes += int64(f.Size)
		}
		if db.prof != nil {
			db.prof.recordCompactionIn(lvl, lvlBytes)
		}
	}

	snapshots := db.liveSnapshots()
	// Tombstones may be purged only when the output reaches the tree's
	// last level AND no resident run survives there beside it: a tiered
	// bottom level keeps its other runs, whose older versions the
	// tombstone must continue to shadow.
	bottom := job.ToLevel == db.opts.NumLevels-1 &&
		(!job.TargetTiered || job.AllOfTargetLevel)

	db.mu.Lock()
	bits := db.filterBitsForRun(db.version, job.ToLevel)
	db.mu.Unlock()

	merge := kv.NewMergingIterator(iters...)
	ci := newCompactionIter(merge, rangeDels, snapshots, bottom, db)
	out := db.newOutputSet(bits, true, survivingRangeDels(rangeDels, bottom, snapshots), overall)
	// Keep the FADE clock honest: outputs that still carry tombstones
	// inherit the inputs' oldest tombstone timestamp — except at the
	// bottom level, where snapshot-protected leftovers would otherwise
	// re-trigger forever.
	if !bottom {
		for _, files := range job.Inputs {
			for _, f := range files {
				if f.OldestTombstoneNs > 0 &&
					(out.inheritTombstoneNs == 0 || f.OldestTombstoneNs < out.inheritTombstoneNs) {
					out.inheritTombstoneNs = f.OldestTombstoneNs
				}
			}
		}
	}

	for ok := ci.first(); ok; ok = ci.next() {
		if err := out.add(ci.key, ci.value); err != nil {
			out.abort()
			return nil, err
		}
	}
	// A corrupt input block makes its source look exhausted rather than
	// failed; installing the output here would silently drop every entry
	// after the bad block and delete the only copy. Surface it instead —
	// the background-failure path degrades the store on corruption.
	if err := merge.Error(); err != nil {
		out.abort()
		return nil, err
	}
	metas, err := out.finish()
	if err != nil {
		out.abort()
		return nil, err
	}

	// Install the result.
	removed := make(map[int][]uint64)
	for lvl, files := range job.Inputs {
		for _, f := range files {
			removed[lvl] = append(removed[lvl], f.Num)
		}
	}
	db.mu.Lock()
	db.version = db.version.ApplyCompaction(removed, job.ToLevel, metas, job.TargetTiered)
	err = db.commitLocked()
	db.mu.Unlock()
	if err != nil {
		return metas, err
	}

	db.m.Compactions.Add(1)
	if job.Reason == compaction.ReasonTombstoneAge {
		db.m.AgeCompactions.Add(1)
	}
	db.m.CompactionBytesRead.Add(int64(inBytes))
	db.m.CompactionBytesWritten.Add(int64(totalBytes(metas)))
	if db.prof != nil {
		db.prof.recordWrite(job.ToLevel, string(job.Reason), int64(totalBytes(metas)))
	}

	// Leaper-style hotness capture: before evicting the inputs, record
	// the user-key spans of their blocks that were actually resident in
	// the cache — the "hot pages" Leaper's model predicts (§2.1.3,
	// [128]).
	var hotRanges []kv.KeyRange
	if db.opts.PrefetchAfterCompaction && db.bcache != nil {
		hotRanges = db.collectHotRanges(job)
	}

	// Drop obsolete inputs from caches and disk.
	for _, nums := range removed {
		for _, num := range nums {
			if db.bcache != nil {
				db.bcache.EvictFile(num)
			}
			db.tcache.evict(num)
		}
	}

	// Re-warm: prefetch the output blocks covering the previously hot
	// key ranges, restoring the cache before readers miss.
	if len(hotRanges) > 0 {
		db.prefetchOutputs(metas, hotRanges)
	}
	return metas, nil
}

// collectHotRanges returns the user-key spans of the job's input blocks
// that are currently cached.
func (db *DB) collectHotRanges(job *compaction.Job) []kv.KeyRange {
	var hot []kv.KeyRange
	for _, files := range job.Inputs {
		for _, f := range files {
			r, release, err := db.tcache.acquire(f.Num)
			if err != nil {
				continue
			}
			prev := f.Smallest
			r.BlockSpans(func(offset uint64, lastKey []byte) {
				last := append([]byte(nil), kv.UserKey(lastKey)...)
				if db.bcache.Contains(f.Num, offset) {
					hot = append(hot, kv.KeyRange{
						Smallest: append([]byte(nil), prev...),
						Largest:  last,
					})
				}
				prev = last
			})
			release()
		}
	}
	return hot
}

// prefetchOutputs re-warms the block cache with the output blocks that
// overlap the previously hot key ranges, up to half the cache capacity
// — Leaper's prediction realized with observed hotness: only data that
// was hot before the compaction is loaded, so the prefetch cannot
// pollute the cache with cold blocks.
func (db *DB) prefetchOutputs(metas []*manifest.FileMeta, hotRanges []kv.KeyRange) {
	budget := int64(db.opts.CacheBytes / 2)
	if budget <= 0 {
		return
	}
	for _, m := range metas {
		if budget <= 0 {
			break
		}
		fileRange := m.KeyRange()
		var touches bool
		for _, hr := range hotRanges {
			if fileRange.Overlaps(hr) {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		r, release, err := db.tcache.acquire(m.Num)
		if err != nil {
			continue
		}
		for _, hr := range hotRanges {
			if budget <= 0 {
				break
			}
			if !fileRange.Overlaps(hr) {
				continue
			}
			budget -= r.WarmRange(hr.Smallest, hr.Largest, budget)
		}
		release()
	}
}
