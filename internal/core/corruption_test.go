package core

import (
	"errors"
	"fmt"
	"testing"

	"lsmlab/internal/manifest"
	"lsmlab/internal/sstable"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// corruptOneLiveTable flips a bit inside the first data block of one
// live table and returns its file number.
func corruptOneLiveTable(t *testing.T, db *DB, ffs *faultfs.FS) uint64 {
	t.Helper()
	live := db.Version().LiveFileNums()
	if len(live) == 0 {
		t.Fatal("no live tables")
	}
	var victim uint64
	for num := range live {
		victim = num
		break
	}
	if err := ffs.FlipBit(vfs.Join("db", manifest.FileName(victim)), 8*64+3); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestCompactionSurfacesCorruptInput pins the regression where a
// corrupt input block made its source iterator look exhausted: the
// compaction would install a silently truncated output and delete the
// only copy of the data. It must fail instead, keeping the inputs.
func TestCompactionSurfacesCorruptInput(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 7)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.CacheBytes = 0
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			if err := db.Put([]byte(fmt.Sprintf("r%d-k%03d", round, i)), make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()

	victim := corruptOneLiveTable(t, db, ffs)

	err = db.Compact()
	if !errors.Is(err, sstable.ErrCorrupt) {
		t.Fatalf("Compact over a corrupt input = %v, want ErrCorrupt", err)
	}
	// The failed compaction must not have installed anything: the
	// corrupt table is still referenced and every live file exists.
	v := db.Version()
	if !v.LiveFileNums()[victim] {
		t.Fatal("corrupt input was deleted by a failed compaction")
	}
	if err := v.Check(); err != nil {
		t.Fatalf("version inconsistent after failed compaction: %v", err)
	}
	for num := range v.LiveFileNums() {
		if !base.Exists(vfs.Join("db", manifest.FileName(num))) {
			t.Fatalf("live table %06d.sst missing after failed compaction", num)
		}
	}
}

// TestBackgroundCompactionCorruptionDegrades drives the same corrupt
// input through the background compaction path: corruption is not
// retryable, so the store must degrade to read-only immediately.
func TestBackgroundCompactionCorruptionDegrades(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 7)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.CacheBytes = 0
	opts.Workers = 1
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Three clean flushes stack three L0 runs (one short of the
	// compaction trigger), then corrupt one of them.
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			if err := db.Put([]byte(fmt.Sprintf("r%d-k%03d", round, i)), make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()
	corruptOneLiveTable(t, db, ffs)

	// The fourth flush trips the L0 compaction, which reads the corrupt
	// block and must degrade rather than truncate.
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("r3-k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	db.Flush() // the flush itself may already report the failed cycle
	waitDegraded(t, db)
	h := db.Health()
	if h.Kind != "corruption" {
		t.Fatalf("kind = %s, want corruption (health %+v)", h.Kind, h)
	}
	if h.Op != "compaction" {
		t.Fatalf("op = %s, want compaction (health %+v)", h.Op, h)
	}
}

// TestScanSurfacesCorruptBlock checks the scan path: an iterator whose
// source dies on a bad block must report the error, not end early.
func TestScanSurfacesCorruptBlock(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 7)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.CacheBytes = 0
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 40; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	corruptOneLiveTable(t, db, ffs)

	it, err := db.NewIterator(IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if err := it.Err(); !errors.Is(err, sstable.ErrCorrupt) {
		t.Fatalf("scan over corrupt table: n=%d Err=%v, want ErrCorrupt", n, err)
	}
}
