package core

import (
	"errors"
	"fmt"
	"testing"

	"lsmlab/internal/compaction"
)

// TestTieredTargetRecencyInvariant is the deterministic regression test
// for a subtle ordering bug: when a merge of level i is installed into
// a *tiered* level i+1, the new run carries data newer than every run
// already resident there, so it must rank newest. Installing it as the
// oldest run lets a stale tombstone (or stale value) in the resident
// runs shadow the newer data.
func TestTieredTargetRecencyInvariant(t *testing.T) {
	db, _ := testDB(t, func(o *Options) {
		o.Layout = compaction.Tiering{K: 2} // merge every 2 runs
		o.StallL0Runs = 0
		o.Workers = 1
	})

	// Round 1: delete(k) reaches L1 via an L0 merge.
	db.Put([]byte("filler-a"), []byte("x"))
	db.Delete([]byte("k"))
	db.Flush() // L0 run 1
	db.Put([]byte("filler-b"), []byte("x"))
	db.Flush() // L0 run 2 → triggers L0 merge → L1 run (holds the tombstone)
	db.WaitIdle()

	// Round 2: put(k) = live lands in a *later* L1 run the same way.
	db.Put([]byte("k"), []byte("alive"))
	db.Flush()
	db.Put([]byte("filler-c"), []byte("x"))
	db.Flush()
	db.WaitIdle()

	// The L1 run holding put(k)@newer must outrank the L1 run holding
	// delete(k)@older.
	v, err := db.Get([]byte("k"))
	if errors.Is(err, ErrNotFound) {
		t.Fatal("stale tombstone in an older tiered run shadowed a newer value")
	}
	if err != nil || string(v) != "alive" {
		t.Fatalf("got %q, %v", v, err)
	}

	// The mirror case: stale value shadowing a newer delete.
	db.Put([]byte("q"), []byte("old"))
	db.Flush()
	db.Put([]byte("filler-d"), []byte("x"))
	db.Flush()
	db.WaitIdle()
	db.Delete([]byte("q"))
	db.Flush()
	db.Put([]byte("filler-e"), []byte("x"))
	db.Flush()
	db.WaitIdle()
	if _, err := db.Get([]byte("q")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale value shadowed a newer tombstone: %v", err)
	}
}

// TestTieredRecencyAcrossDeepLevels pushes the same pattern further
// down the tree with a full workload, asserting the engine-wide
// ordering property via the model.
func TestTieredRecencyAcrossDeepLevels(t *testing.T) {
	db, _ := testDB(t, func(o *Options) {
		o.Layout = compaction.Tiering{K: 2}
		o.StallL0Runs = 0
	})
	model := map[string]string{}
	for round := 0; round < 20; round++ {
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%03d", i%120)
			if (round+i)%7 == 0 {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				val := fmt.Sprintf("r%d-%d", round, i)
				db.Put([]byte(k), []byte(val))
				model[k] = val
			}
		}
		db.Flush()
	}
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 120)
}
