package core

import (
	"sync"
	"time"
)

// rateLimiter is a token-bucket bandwidth throttle for compaction
// writes, in the spirit of SILK's I/O scheduler (tutorial §2.2.3):
// compactions are capped so that flushes — which gate ingestion — keep
// device headroom. Flushes never pass through the limiter.
type rateLimiter struct {
	mu           sync.Mutex
	bytesPerSec  int64
	maxBucket    float64
	available    float64
	lastRefillNs int64
	nowNs        func() int64
	sleep        func(time.Duration)
	// onWaitNs, when non-nil, is charged every nanosecond the limiter
	// pauses a compaction — the observability hook that lets stats show
	// how much of a job's duration was deliberate pacing.
	onWaitNs func(ns int64)
}

func newRateLimiter(bytesPerSec int64, nowNs func() int64, sleep func(time.Duration), onWaitNs func(ns int64)) *rateLimiter {
	if sleep == nil {
		sleep = time.Sleep
	}
	// A quarter-second bucket: enough to absorb write jitter without
	// letting a whole compaction slip through un-paced.
	maxBucket := float64(bytesPerSec) / 4
	return &rateLimiter{
		bytesPerSec:  bytesPerSec,
		maxBucket:    maxBucket,
		available:    maxBucket,
		lastRefillNs: nowNs(),
		nowNs:        nowNs,
		sleep:        sleep,
		onWaitNs:     onWaitNs,
	}
}

// waitFor blocks (or charges the injected sleep function) until n bytes
// of budget are available, then consumes them.
func (r *rateLimiter) waitFor(n int) {
	if r == nil || r.bytesPerSec <= 0 {
		return
	}
	for {
		r.mu.Lock()
		now := r.nowNs()
		elapsed := now - r.lastRefillNs
		if elapsed > 0 {
			r.available += float64(elapsed) / 1e9 * float64(r.bytesPerSec)
			if r.available > r.maxBucket {
				r.available = r.maxBucket
			}
			r.lastRefillNs = now
		}
		if r.available >= float64(n) || r.available >= r.maxBucket {
			// Requests larger than the whole bucket are admitted when it
			// is full, so oversized writes make progress instead of
			// deadlocking.
			r.available -= float64(n)
			r.mu.Unlock()
			return
		}
		deficit := float64(n) - r.available
		waitNs := time.Duration(deficit / float64(r.bytesPerSec) * 1e9)
		r.mu.Unlock()
		if waitNs < time.Millisecond {
			waitNs = time.Millisecond
		}
		if r.onWaitNs != nil {
			r.onWaitNs(int64(waitNs))
		}
		r.sleep(waitNs)
	}
}
