package core

import (
	"errors"
	"fmt"

	"lsmlab/internal/events"
	"lsmlab/internal/manifest"
	"lsmlab/internal/vfs"
)

// This file implements the scrubber: an on-demand integrity walk over
// every durable artifact the engine owns. Block checksums protect
// individual reads, but a cold region of the tree can rot silently for
// as long as no query touches it — the scrubber turns that latent
// corruption into a report (and a quarantine) while the good copies in
// shallower levels or backups still exist.

// ScrubFinding describes one corrupt artifact discovered by a scrub.
type ScrubFinding struct {
	// Path is the file name inside the database directory.
	Path string
	// Err is the corruption detail (checksum mismatch, bad structure).
	Err error
	// Quarantined reports whether the file was dropped from the live
	// version and renamed aside with a ".corrupt" suffix. Only sstables
	// are quarantined; vlog and manifest damage is reported but left in
	// place, since those files have no redundant copy to fall back to.
	Quarantined bool
}

// ScrubReport summarizes one DB.Scrub pass.
type ScrubReport struct {
	// Tables and TableBytes count the sstables verified and the data-
	// block bytes whose checksums were recomputed.
	Tables     int
	TableBytes int64
	// VlogSegments counts the value-log segments structurally verified.
	VlogSegments int
	// ManifestOK reports the manifest verification result.
	ManifestOK bool
	// Findings lists every corrupt artifact (empty on a clean scrub).
	Findings []ScrubFinding
}

// String renders the report in the stable key=value style of
// FormatStats, one line per finding.
func (r ScrubReport) String() string {
	s := fmt.Sprintf("scrub: tables=%d bytes=%d vlogs=%d manifest=%v corrupt=%d",
		r.Tables, r.TableBytes, r.VlogSegments, r.ManifestOK, len(r.Findings))
	for _, f := range r.Findings {
		s += fmt.Sprintf("\n  corrupt %s quarantined=%v: %v", f.Path, f.Quarantined, f.Err)
	}
	return s
}

// Scrub walks every live sstable (recomputing every data-block
// checksum, bypassing the block cache), every value-log segment
// (structural validation — vlog records carry no checksum), and the
// manifest. Corrupt sstables are quarantined: dropped from the live
// version (committed to the manifest) and renamed aside with a
// ".corrupt" suffix so the evidence survives while reads stop routing
// through the damage. Scrub runs concurrently with reads, writes, and
// background work; it returns an error only when the walk itself
// cannot proceed, not when it finds corruption — check the report.
func (db *DB) Scrub() (ScrubReport, error) {
	start := db.opts.NowNs()
	var rep ScrubReport
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return rep, ErrClosed
	}
	v := db.version
	db.mu.Unlock()

	// Live tables. The version is an immutable snapshot: a file
	// compacted away mid-scrub shows up as ErrNotExist and is skipped —
	// its data lives on, re-written into the compaction output.
	for _, l := range v.Levels {
		for _, run := range l.Runs {
			for _, f := range run.Files {
				name := manifest.FileName(f.Num)
				r, release, err := db.tcache.acquire(f.Num)
				if err != nil {
					if errors.Is(err, vfs.ErrNotExist) {
						continue // deleted by a racing compaction
					}
					// Unopenable: a damaged footer or pinned block (those
					// are checksum-verified at Open).
					rep.Tables++
					db.m.ScrubbedTables.Add(1)
					q := db.quarantineTable(f.Num)
					rep.Findings = append(rep.Findings,
						ScrubFinding{Path: name, Err: err, Quarantined: q})
					continue
				}
				n, verr := r.VerifyChecksums()
				release()
				rep.Tables++
				rep.TableBytes += n
				db.m.ScrubbedTables.Add(1)
				if verr != nil {
					q := db.quarantineTable(f.Num)
					rep.Findings = append(rep.Findings,
						ScrubFinding{Path: name, Err: verr, Quarantined: q})
				}
			}
		}
	}

	// Value-log segments: structural only (records carry no checksum;
	// the documented WiscKey trade-off). Damage is reported, never
	// quarantined — pointers into a renamed segment would all break.
	if db.vlog != nil {
		for _, num := range db.vlog.SegmentNums() {
			rep.VlogSegments++
			if err := db.vlog.VerifyFile(num); err != nil {
				rep.Findings = append(rep.Findings,
					ScrubFinding{Path: manifest.VLogName(num), Err: err})
			}
		}
	}

	// Manifest: every complete frame must checksum and decode. Serialize
	// against commits so a frame is never read half-written.
	db.mu.Lock()
	merr := manifest.Verify(db.fs, vfs.Join(db.dir, "MANIFEST"))
	db.mu.Unlock()
	rep.ManifestOK = merr == nil
	if merr != nil {
		rep.Findings = append(rep.Findings, ScrubFinding{Path: "MANIFEST", Err: merr})
	}

	db.emit(events.Event{Type: events.ScrubEnd,
		OutputFiles: rep.Tables + rep.VlogSegments + 1,
		InputFiles:  len(rep.Findings),
		DurationNs:  db.opts.NowNs() - start})
	return rep, nil
}

// quarantineTable drops fileNum from the live version (durably, via a
// manifest commit), renames the file aside as <name>.corrupt, and
// evicts every trace of it from the table and block caches. Reads that
// raced past the version swap hit ErrNotExist on the doomed cache
// entry and retry against the new version, where the key is simply
// absent. Reports whether the quarantine fully succeeded.
func (db *DB) quarantineTable(fileNum uint64) bool {
	name := manifest.FileName(fileNum)
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return false
	}
	// The level key in the removal map is irrelevant: ReplaceRuns drops
	// the file number wherever it lives.
	db.version = db.version.ReplaceRuns(map[int][]uint64{0: {fileNum}}, 0, nil)
	cerr := db.commitLocked()
	db.mu.Unlock()
	db.m.ScrubCorruptions.Add(1)

	// Rename before forgetting the cache entry: once the entry is
	// doomed, removeOrphans-style sweeps cannot resurrect a reader, and
	// the rename keeps the evidence out of the .sst namespace so a
	// restart's orphan sweep will not delete it.
	ok := cerr == nil
	if err := db.fs.Rename(vfs.Join(db.dir, name), vfs.Join(db.dir, name+".corrupt")); err != nil {
		ok = false
	}
	db.tcache.forget(fileNum)
	if db.bcache != nil {
		db.bcache.EvictFile(fileNum)
	}
	return ok
}
