package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lsmlab/internal/bloom"
	"lsmlab/internal/cache"
	"lsmlab/internal/compaction"
	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
	"lsmlab/internal/memtable"
	"lsmlab/internal/metrics"
	"lsmlab/internal/sstable"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
	"lsmlab/internal/wal"
	"lsmlab/internal/wisckey"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database closed")

// ErrNotFound is returned by Get when the key has no live value.
var ErrNotFound = errors.New("lsm: key not found")

// memWrapper pairs a memtable with its range tombstones and the WAL
// segment that protects it.
type memWrapper struct {
	mt     memtable.Memtable
	walNum uint64
	// flushFailures counts consecutive failed flush attempts (guarded by
	// db.mu); retries back off so a persistently failing device does not
	// spin a worker at full speed.
	flushFailures int

	// writers counts commit-group members whose memtable inserts are
	// still in flight. A flush waits for it to drain, so a buffer
	// retired while a group is applying is never written to disk (and
	// its WAL segment never deleted) before those inserts land.
	writers sync.WaitGroup

	rmu       sync.RWMutex
	rangeDels []kv.RangeTombstone
}

func (m *memWrapper) addRangeDel(t kv.RangeTombstone) {
	m.rmu.Lock()
	m.rangeDels = append(m.rangeDels, t)
	m.rmu.Unlock()
}

func (m *memWrapper) rangeTombstones() []kv.RangeTombstone {
	m.rmu.RLock()
	defer m.rmu.RUnlock()
	return append([]kv.RangeTombstone(nil), m.rangeDels...)
}

// DB is an LSM-tree key-value store.
type DB struct {
	opts Options
	fs   vfs.FS
	dir  string

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when stalls may clear or work completes
	mem       *memWrapper
	imm       []*memWrapper // oldest first
	version   *manifest.Version
	nextFile  uint64
	store     *manifest.Store
	walFile   vfs.File
	wal       *wal.Writer
	snapshots map[kv.SeqNum]int
	busyLevel map[int]bool         // levels currently compacting
	building  map[*memWrapper]bool // immutable buffers being flushed
	closed    bool
	bgErr     error  // first background error; surfaced in Health/stats and on Close
	bgErrOp   string // operation ("flush", "compaction") that produced bgErr

	// compactFailures counts consecutive failed compaction attempts
	// (guarded by db.mu), driving retry backoff and the degradation
	// policy symmetrically with memWrapper.flushFailures.
	compactFailures int

	// degraded, once set, is the sticky read-only mode (health.go):
	// writes fail fast with this error, reads keep serving, background
	// work stops. degradedFlag mirrors it for lock-free fast paths.
	degraded      *DegradedError
	degradedSince int64
	degradedFlag  atomic.Bool

	// walMu serializes WAL appends against WAL rotation. The commit
	// leader acquires it (under db.mu) before pinning db.wal and holds
	// it through the group's buffered append and sync; rotation takes it
	// (also under db.mu) for the file swap. Lock order: mu → walMu.
	walMu sync.Mutex

	// commit is the group-commit pipeline (commit.go): concurrent Apply
	// calls form write groups with one WAL write and one sync per group.
	commit commitPipeline

	// lastSeq is the sequence allocation cursor (highest assigned);
	// visibleSeq is the highest sequence published in commit order.
	// Readers and snapshots use visibleSeq so a batch whose group
	// predecessors are still applying is never observed early — and no
	// sequence hole ever is.
	lastSeq    atomic.Uint64
	visibleSeq atomic.Uint64

	bg     sync.WaitGroup
	picker *compaction.Picker
	tcache *tableCache
	bcache *cache.Cache
	vlog   *wisckey.Log

	m metrics.Metrics

	// prof is the live workload profiler (profile.go); nil when
	// Options.DisableProfiler is set. stSink is the engine's statsSink
	// pre-boxed as an interface so the get path can hand it to the
	// profiler's per-level shim without allocating.
	prof   *profiler
	stSink sstable.ReadStats

	// listener receives lifecycle events (nil = disabled); jobIDs pairs
	// the begin/end events of flush, compaction, and checkpoint jobs.
	listener events.Listener
	jobIDs   atomic.Uint64

	// tracer, when non-nil, mints per-operation spans (trace.go methods
	// GetTraced/ApplyTraced carry wire-propagated ids into them). The
	// nil fast path is one pointer compare per operation.
	tracer *trace.Tracer

	// timeOps gates the per-operation latency histograms (Get, Put,
	// Scan-next). Clock reads cost ~100ns per op — real money against a
	// memtable hit — so they run only when observability is on: a
	// listener attached or Options.RecordLatencies set. Background-job
	// histograms (flush, compaction) are always on; their once-per-job
	// cost is noise.
	timeOps bool
}

// emit delivers one event to the configured listener, stamping the
// engine clock. With no listener the cost is a single nil check, so the
// hot paths pay nothing when observability is off.
func (db *DB) emit(e events.Event) {
	if db.listener == nil {
		return
	}
	e.TimeNs = db.opts.NowNs()
	db.listener.Notify(e)
}

// nextJobID allocates an ID shared by one job's begin and end events.
func (db *DB) nextJobID() uint64 { return db.jobIDs.Add(1) }

// statsSink adapts metrics to the sstable.ReadStats and cache.Stats
// interfaces.
type statsSink struct{ m *metrics.Metrics }

func (s statsSink) FilterProbe(negative bool) {
	s.m.FilterProbes.Add(1)
	if negative {
		s.m.FilterNegatives.Add(1)
	}
}

func (s statsSink) BlockRead(cached bool) {
	s.m.BlockReads.Add(1)
	if cached {
		s.m.BlockReadsCached.Add(1)
	}
}

func (s statsSink) CacheAccess(hit bool) {
	if hit {
		s.m.CacheHits.Add(1)
	} else {
		s.m.CacheMisses.Add(1)
	}
}

// tracedSink fans read-path events out to both the engine metrics and
// one operation's span, replacing the readers' baked-in statsSink for
// the duration of a traced lookup. It exists per traced operation only,
// so untraced reads allocate nothing.
type tracedSink struct {
	m  *metrics.Metrics
	sp *trace.Span
}

func (s *tracedSink) FilterProbe(negative bool) {
	statsSink{s.m}.FilterProbe(negative)
	s.sp.FilterProbe(negative)
}

func (s *tracedSink) BlockRead(cached bool) {
	statsSink{s.m}.BlockRead(cached)
	s.sp.BlockRead(cached)
}

// Tracer returns the tracer this DB was opened with (nil when tracing
// is disabled). The serving layer uses it to span wire requests whose
// engine entry points it drives directly.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// Open opens (creating if necessary) a database at opts.Path and
// recovers any committed state and WAL tail.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.FS == nil {
		return nil, errors.New("lsm: Options.FS is required")
	}
	if err := opts.FS.MkdirAll(opts.Path); err != nil {
		return nil, err
	}
	db := &DB{
		opts:      opts,
		fs:        opts.FS,
		dir:       opts.Path,
		snapshots: make(map[kv.SeqNum]int),
		busyLevel: make(map[int]bool),
		building:  make(map[*memWrapper]bool),
		listener:  opts.EventListener,
		tracer:    opts.Tracer,
		timeOps:   opts.EventListener != nil || opts.RecordLatencies,
	}
	db.cond = sync.NewCond(&db.mu)
	db.commit.init()
	db.stSink = statsSink{&db.m}
	if !opts.DisableProfiler {
		db.prof = newProfiler(&db.m, opts.NumLevels, opts.ProfileWindowOps)
	}
	if opts.CacheBytes > 0 {
		db.bcache = cache.New(opts.CacheBytes)
		db.bcache.SetStats(statsSink{&db.m})
	}
	db.tcache = newTableCache(db.fs, db.dir, func(fileNum uint64) sstable.ReaderOptions {
		var bc sstable.BlockCache
		if db.bcache != nil {
			bc = db.bcache
		}
		return sstable.ReaderOptions{FileNum: fileNum, Cache: bc, Stats: statsSink{&db.m}}
	})
	db.picker = compaction.NewPicker(compaction.Options{
		NumLevels:               opts.NumLevels,
		SizeRatio:               opts.SizeRatio,
		BaseLevelBytes:          opts.BaseLevelBytes,
		Layout:                  opts.Layout,
		Granularity:             opts.Granularity,
		MovePolicy:              opts.MovePolicy,
		TombstoneAgeThresholdNs: int64(opts.TombstoneAgeThreshold),
		NowNs:                   opts.NowNs,
	})

	// Recover the manifest.
	store, state, err := manifest.OpenStore(db.fs, vfs.Join(db.dir, "MANIFEST"))
	if err != nil {
		return nil, err
	}
	db.store = store
	if state != nil {
		db.version = state.Version
		// Tolerate a NumLevels increase across restarts.
		for len(db.version.Levels) < opts.NumLevels {
			db.version.Levels = append(db.version.Levels, &manifest.Level{})
		}
		db.nextFile = state.NextFileNum
		db.lastSeq.Store(uint64(state.LastSeq))
	} else {
		db.version = manifest.NewVersion(opts.NumLevels)
		db.nextFile = 1
	}

	if opts.ValueSeparationThreshold > 0 {
		vl, err := wisckey.Open(db.fs, db.dir)
		if err != nil {
			return nil, err
		}
		db.vlog = vl
	}

	// Delete orphaned table files (outputs of a crashed compaction).
	db.removeOrphans()

	// Replay WAL segments in order, then start a fresh segment.
	if err := db.recoverWALs(); err != nil {
		return nil, err
	}
	// A fresh store starts its sequence space at 1, never 0: sequence 0
	// is the "read at latest" sentinel throughout the read path, so a
	// snapshot of an empty store (visibleSeq 0) would silently degrade
	// into a live view — which breaks the cross-shard snapshot vector,
	// whose consistency depends on every captured watermark staying
	// fixed.
	db.lastSeq.CompareAndSwap(0, 1)
	db.visibleSeq.Store(db.lastSeq.Load())
	if err := db.newMemtable(); err != nil {
		return nil, err
	}

	for i := 0; i < opts.Workers; i++ {
		// With two or more workers, the first is dedicated to flushes
		// (RocksDB's separate flush pool): ingestion never queues behind
		// a long compaction (§2.2.5, and SILK's flush-priority insight).
		flushOnly := i == 0 && opts.Workers > 1
		db.bg.Add(1)
		go db.worker(flushOnly)
	}
	db.maybeScheduleWork()
	return db, nil
}

// removeOrphans deletes .sst files not referenced by the recovered
// version.
func (db *DB) removeOrphans() {
	live := db.version.LiveFileNums()
	names, err := db.fs.List(db.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		num, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil || live[num] {
			continue
		}
		db.fs.Remove(vfs.Join(db.dir, name))
	}
}

// recoverWALs replays every WAL segment into memtables and flushes them
// synchronously, so recovery leaves no volatile state.
func (db *DB) recoverWALs() error {
	names, err := db.fs.List(db.dir)
	if err != nil {
		return err
	}
	var nums []uint64
	for _, name := range names {
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		num, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err == nil {
			nums = append(nums, num)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, num := range nums {
		f, err := db.fs.Open(vfs.Join(db.dir, manifest.WALName(num)))
		if err != nil {
			return err
		}
		mw := &memWrapper{mt: memtable.New(db.opts.MemtableKind)}
		err = wal.Replay(f, func(b wal.Batch) error {
			seq := b.Seq
			for _, op := range b.Ops {
				switch op.Kind {
				case kv.KindRangeDelete:
					mw.addRangeDel(kv.RangeTombstone{Start: op.Key, End: op.Value, Seq: seq})
				default:
					mw.mt.Add(seq, op.Kind, op.Key, op.Value)
				}
				seq++
			}
			if uint64(seq-1) > db.lastSeq.Load() {
				db.lastSeq.Store(uint64(seq - 1))
			}
			return nil
		})
		f.Close()
		if err != nil {
			return err
		}
		if mw.mt.Len() > 0 || len(mw.rangeTombstones()) > 0 {
			if err := db.flushMemtable(mw); err != nil {
				return err
			}
		}
		db.fs.Remove(vfs.Join(db.dir, manifest.WALName(num)))
	}
	return nil
}

// newMemtable installs a fresh mutable buffer and its WAL segment.
// Callers must not hold db.mu.
func (db *DB) newMemtable() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.newMemtableLocked()
}

func (db *DB) newMemtableLocked() error {
	mw := &memWrapper{mt: memtable.New(db.opts.MemtableKind)}
	if !db.opts.DisableWAL {
		num := db.nextFile
		db.nextFile++
		f, err := db.fs.Create(vfs.Join(db.dir, manifest.WALName(num)))
		if err != nil {
			return err
		}
		db.walFile = f
		db.wal = wal.NewWriter(f)
		mw.walNum = num
		db.emit(events.Event{Type: events.WALRotated, Path: manifest.WALName(num)})
	}
	db.mem = mw
	return nil
}

// allocFileNum must be called with db.mu held.
func (db *DB) allocFileNum() uint64 {
	n := db.nextFile
	db.nextFile++
	return n
}

// commitLocked persists the current structural state. Callers hold
// db.mu.
func (db *DB) commitLocked() error {
	st := &manifest.State{
		Version:     db.version,
		NextFileNum: db.nextFile,
		LastSeq:     kv.SeqNum(db.lastSeq.Load()),
	}
	if err := db.store.Commit(st); err != nil {
		return err
	}
	if db.opts.Paranoid {
		if err := db.version.Check(); err != nil {
			return fmt.Errorf("lsm: version invariant violated: %w", err)
		}
	}
	return nil
}

// filterBitsForRun computes the bits-per-key for a new run landing at
// level, holding approximately newEntries entries.
//
// Monkey mode allocates the budget against the tree's *configured*
// shape — the expected entry capacity of every run at every level —
// rather than the transient current contents, exactly as Monkey sizes
// filters from the design (T, layout, buffer size). This keeps the
// per-level assignment stable across flushes and the total spend within
// budget once the tree fills.
func (db *DB) filterBitsForRun(v *manifest.Version, level int) float64 {
	switch db.opts.FilterMode {
	case FilterNone:
		return 0
	case FilterUniform:
		return db.opts.BitsPerKey
	}
	// Average entry size from the live tree (fallback for an empty one).
	avg := int64(80)
	if files, bytes := int64(v.TotalFiles()), int64(v.TotalSize()); files > 0 && bytes > 0 {
		var entries int64
		for _, l := range v.Levels {
			for _, r := range l.Runs {
				entries += int64(r.NumEntries())
			}
		}
		if entries > 0 {
			avg = bytes / entries
			if avg < 16 {
				avg = 16
			}
		}
	}
	popts := db.picker.Options()
	var counts []int64
	runIdxForLevel := make([]int, db.opts.NumLevels)
	for lvl := 0; lvl < db.opts.NumLevels; lvl++ {
		runIdxForLevel[lvl] = len(counts)
		runCap := db.opts.Layout.RunCapacity(lvl, db.opts.NumLevels)
		var perRun int64
		if lvl == 0 {
			perRun = int64(db.opts.BufferBytes) / avg
		} else {
			perRun = int64(popts.LevelCapacityBytes(lvl)) / avg / int64(runCap)
		}
		if perRun < 1 {
			perRun = 1
		}
		for r := 0; r < runCap; r++ {
			counts = append(counts, perRun)
		}
	}
	bits := bloom.Allocate(counts, db.opts.FilterBudgetBits)
	return bits[runIdxForLevel[level]]
}

// maybeScheduleWork wakes the background workers; they park on the
// shared condition variable, so a broadcast can never be lost the way a
// bounded token channel could.
func (db *DB) maybeScheduleWork() {
	db.cond.Broadcast()
}

// worker executes flushes (priority) and compactions until close.
// flushOnly workers never start compactions, so a flush slot is always
// available when Workers > 1 (a dedicated flush pool).
func (db *DB) worker(flushOnly bool) {
	defer db.bg.Done()
	db.mu.Lock()
	defer db.mu.Unlock()
	for !db.closed {
		// A degraded engine initiates no background work: the device is
		// suspect and writes are already refused, so workers park until
		// close.
		if db.degraded != nil {
			db.cond.Wait()
			continue
		}
		// Flushes first: they unblock writers. Multiple workers may
		// build flushes concurrently; installation is serialized in
		// queue order so level-0 run recency stays correct.
		var flushTarget *memWrapper
		for _, mw := range db.imm {
			if !db.building[mw] {
				flushTarget = mw
				break
			}
		}
		if flushTarget != nil {
			db.building[flushTarget] = true
			backoff := retryBackoff(flushTarget.flushFailures)
			db.mu.Unlock()
			if backoff > 0 {
				time.Sleep(backoff)
			}
			err := db.flushMemtable(flushTarget)
			db.mu.Lock()
			delete(db.building, flushTarget)
			if err != nil {
				flushTarget.flushFailures++
				db.noteBackgroundFailure("flush", flushTarget.flushFailures, err)
			} else {
				flushTarget.flushFailures = 0
			}
			db.cond.Broadcast()
			continue
		}
		if !flushOnly {
			if job := db.pickUnlockedJob(); job != nil {
				for lvl := range job.Inputs {
					db.busyLevel[lvl] = true
				}
				db.busyLevel[job.ToLevel] = true
				backoff := retryBackoff(db.compactFailures)
				db.mu.Unlock()
				if backoff > 0 {
					time.Sleep(backoff)
				}
				err := db.runCompaction(job)
				db.mu.Lock()
				for lvl := range job.Inputs {
					delete(db.busyLevel, lvl)
				}
				delete(db.busyLevel, job.ToLevel)
				if err != nil {
					db.compactFailures++
					db.noteBackgroundFailure("compaction", db.compactFailures, err)
				} else {
					db.compactFailures = 0
				}
				db.cond.Broadcast()
				continue
			}
		}
		db.cond.Wait()
	}
}

// retryBackoff is the capped exponential backoff between retries of a
// failing background job: 10ms doubling per consecutive failure, at
// most one second, so a flapping device is retried politely and a dead
// one cannot spin a worker at full speed before degradation kicks in.
func retryBackoff(failures int) time.Duration {
	if failures <= 0 {
		return 0
	}
	if failures > 7 { // 10ms << 7 > 1s; avoid shift overflow
		return time.Second
	}
	d := 10 * time.Millisecond << (failures - 1)
	if d > time.Second {
		d = time.Second
	}
	return d
}

// pickUnlockedJob returns the highest-priority compaction job that does
// not touch a busy level, so concurrent workers take disjoint work.
// Callers hold db.mu.
func (db *DB) pickUnlockedJob() *compaction.Job {
	return db.picker.PickExcluding(db.version, func(level int) bool {
		return db.busyLevel[level]
	})
}

// waitIdle blocks until no background work is pending. Used by tests
// and experiments for deterministic measurement.
func (db *DB) waitIdle() {
	db.mu.Lock()
	for {
		idle := len(db.imm) == 0 && len(db.building) == 0 && len(db.busyLevel) == 0 &&
			db.pickUnlockedJob() == nil
		// A degraded engine counts as idle: workers are parked and the
		// pending queue will never drain, so waiting would hang forever.
		if idle || db.closed || db.degraded != nil {
			db.mu.Unlock()
			return
		}
		db.maybeScheduleWork()
		db.cond.Wait()
	}
}

// WaitIdle flushes nothing but blocks until queued background work has
// drained. Deterministic experiments call it before measuring.
func (db *DB) WaitIdle() { db.waitIdle() }

// Metrics returns a snapshot of the engine counters.
func (db *DB) Metrics() metrics.Snapshot { return db.m.Snapshot() }

// Latencies returns a snapshot of the per-operation latency histograms
// (Get, Put, Scan-next, flush, compaction).
func (db *DB) Latencies() metrics.LatencySnapshot { return db.m.Latencies() }

// DiskUsageBytes reports the live table bytes (the numerator of space
// amplification).
func (db *DB) DiskUsageBytes() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := db.version.TotalSize()
	if db.vlog != nil {
		total += uint64(db.vlog.DiskBytes())
	}
	return total
}

// Version returns the current tree structure (immutable; safe to read).
func (db *DB) Version() *manifest.Version {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.version
}

// Flush forces the mutable memtable to disk and waits for it.
func (db *DB) Flush() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.degradedErrLocked(); err != nil {
		// Read-only: flushing would write; fail fast with the cause.
		db.mu.Unlock()
		return err
	}
	if db.mem.mt.Len() > 0 || len(db.mem.rangeTombstones()) > 0 {
		if err := db.rotateMemtableLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Unlock()
	db.waitIdle()
	db.mu.Lock()
	err := db.degradedErrLocked()
	if err == nil {
		err = db.bgErr
	}
	db.mu.Unlock()
	return err
}

// Compact runs a full manual compaction into the last level.
func (db *DB) Compact() error {
	if err := db.Flush(); err != nil {
		return err
	}
	db.mu.Lock()
	job := db.picker.ManualJob(db.version)
	if job == nil {
		db.mu.Unlock()
		return nil
	}
	for len(db.building) > 0 || len(db.busyLevel) > 0 {
		db.cond.Wait()
	}
	for lvl := range job.Inputs {
		db.busyLevel[lvl] = true
	}
	db.busyLevel[job.ToLevel] = true
	db.mu.Unlock()

	err := db.runCompaction(job)

	db.mu.Lock()
	for lvl := range job.Inputs {
		delete(db.busyLevel, lvl)
	}
	delete(db.busyLevel, job.ToLevel)
	db.cond.Broadcast()
	db.mu.Unlock()
	db.waitIdle()
	return err
}

// Close flushes the mutable buffer, waits for background work, commits
// the manifest, and releases every resource. The first background error
// (if any) is returned.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()

	flushErr := db.Flush()

	db.mu.Lock()
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	db.bg.Wait()

	db.mu.Lock()
	defer db.mu.Unlock()
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(flushErr)
	keep(db.bgErr)
	keep(db.commitLocked())
	keep(db.store.Close())
	if db.walFile != nil {
		keep(db.walFile.Close())
		// The buffer was flushed; its (empty) WAL segment is garbage.
		if db.mem != nil && db.mem.walNum != 0 {
			db.fs.Remove(vfs.Join(db.dir, manifest.WALName(db.mem.walNum)))
		}
	}
	if db.vlog != nil {
		keep(db.vlog.Close())
	}
	db.tcache.close()
	return firstErr
}
