package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"lsmlab/internal/vfs"
)

func TestCheckpointBasic(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.BufferBytes = 8 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	model := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		model[k] = v
	}
	db.Delete([]byte("k100"))
	delete(model, "k100")

	if err := db.Checkpoint("backup"); err != nil {
		t.Fatal(err)
	}

	// Mutations after the checkpoint must not leak into it.
	db.Put([]byte("k000"), []byte("post-checkpoint"))
	db.DeleteRange([]byte("k200"), []byte("k300"))

	bopts := DefaultOptions(fs, "backup")
	backup, err := Open(bopts)
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	for k, want := range model {
		v, err := backup.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("backup %s = %q/%v want %q", k, v, err, want)
		}
	}
	if _, err := backup.Get([]byte("k100")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected in backup")
	}
	// The backup is writable and independent.
	if err := backup.Put([]byte("only-backup"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("only-backup")); !errors.Is(err, ErrNotFound) {
		t.Fatal("backup write leaked into source")
	}
}

func TestCheckpointRejectsBadTargets(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Put([]byte("k"), []byte("v"))
	if err := db.Checkpoint("db"); err == nil {
		t.Fatal("checkpoint into the store dir must fail")
	}
	if err := db.Checkpoint("ck"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint("ck"); err == nil {
		t.Fatal("checkpoint into an existing store must fail")
	}
}

func TestCheckpointWithValueSeparation(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.ValueSeparationThreshold = 64
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	big := make([]byte, 400)
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), big)
	}
	if err := db.Checkpoint("ck"); err != nil {
		t.Fatal(err)
	}
	bopts := DefaultOptions(fs, "ck")
	bopts.ValueSeparationThreshold = 64
	backup, err := Open(bopts)
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	for i := 0; i < 50; i++ {
		v, err := backup.Get([]byte(fmt.Sprintf("k%02d", i)))
		if err != nil || len(v) != 400 {
			t.Fatalf("backup separated value %d: len=%d err=%v", i, len(v), err)
		}
	}
}

func TestCheckpointDuringConcurrentWrites(t *testing.T) {
	db, fs := testDB(t, func(o *Options) { o.Workers = 2 })
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("seed-%04d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Put([]byte(fmt.Sprintf("hot-%06d", i)), []byte("v"))
			i++
		}
	}()
	if err := db.Checkpoint("ck"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	backup, err := Open(DefaultOptions(fs, "ck"))
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	// Every seed key (written before the checkpoint) must be present.
	for i := 0; i < 2000; i += 111 {
		if _, err := backup.Get([]byte(fmt.Sprintf("seed-%04d", i))); err != nil {
			t.Fatalf("seed %d missing from checkpoint: %v", i, err)
		}
	}
	kvs, err := backup.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) < 2000 {
		t.Fatalf("checkpoint holds %d keys, want >= 2000", len(kvs))
	}
}
