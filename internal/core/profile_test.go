package core

import (
	"fmt"
	"math"
	"os"
	"testing"

	"lsmlab/internal/sketch"
	"lsmlab/internal/vfs"
)

// profileDB opens a store with a small profile window so rotations and
// sketch decay happen within test-sized workloads.
func profileDB(t *testing.T, windowOps int) *DB {
	t.Helper()
	opts := DefaultOptions(vfs.NewMem(), "db")
	opts.ProfileWindowOps = windowOps
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestWorkloadProfileBasic(t *testing.T) {
	db := profileDB(t, 1<<14)

	val := make([]byte, 64)
	const n = 4000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("acme/user%05d", i%1000))
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// A skewed read phase: one hot key takes half the traffic.
	hot := []byte("acme/user00042")
	for i := 0; i < n; i++ {
		key := hot
		if i%2 == 1 {
			key = []byte(fmt.Sprintf("acme/user%05d", i%1000))
		}
		if _, err := db.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Scan([]byte("acme/user00000"), []byte("acme/user00100"), 0); err != nil {
		t.Fatal(err)
	}

	wp := db.WorkloadProfile()
	if !wp.Enabled {
		t.Fatal("profiler should be enabled by default")
	}
	if wp.Gets == 0 || wp.Puts == 0 || wp.Scans == 0 {
		t.Fatalf("op mix not populated: gets=%d puts=%d scans=%d", wp.Gets, wp.Puts, wp.Scans)
	}
	if wp.ScanEntries == 0 || wp.MeanScanLen <= 0 {
		t.Fatalf("scan shape not populated: entries=%d mean=%f", wp.ScanEntries, wp.MeanScanLen)
	}
	if wp.DistinctKeys == 0 {
		t.Fatal("distinct-key estimate is zero")
	}
	if len(wp.TopKeys) == 0 {
		t.Fatal("no top keys reported")
	}
	if wp.TopKeys[0].Key != string(hot) {
		t.Errorf("hottest key = %q, want %q", wp.TopKeys[0].Key, hot)
	}
	if wp.TopShare <= 0 || wp.TopShare > 1.05 {
		t.Errorf("top share %f out of range", wp.TopShare)
	}
	// The tenant table must attribute the traffic to the "acme" prefix.
	if len(wp.Tenants) == 0 {
		t.Fatal("no tenant rows")
	}
	if wp.Tenants[0].Tenant != "acme" {
		t.Errorf("dominant tenant = %q, want acme", wp.Tenants[0].Tenant)
	}
	if wp.Tenants[0].Gets == 0 || wp.Tenants[0].Puts == 0 {
		t.Errorf("tenant mix not split by op: %+v", wp.Tenants[0])
	}
	// Flushes attribute to level 0 under reason "flush".
	if len(wp.Levels) == 0 {
		t.Fatal("no level attribution")
	}
	if wp.Levels[0].BytesWritten == 0 || wp.Levels[0].WriteByReason["flush"] == 0 {
		t.Errorf("flush bytes not attributed to L0: %+v", wp.Levels[0])
	}
	// The reads above probed L0; sampled attribution must have seen some.
	if wp.Levels[0].RunsProbed == 0 {
		t.Errorf("no sampled runs probed at L0")
	}
	if wp.ReadAmp <= 0 {
		t.Errorf("read amp = %f, want > 0", wp.ReadAmp)
	}
	if wp.WriteAmp <= 0 {
		t.Errorf("write amp = %f, want > 0", wp.WriteAmp)
	}
	if wp.SpaceAmp < 1 {
		t.Errorf("space amp = %f, want >= 1", wp.SpaceAmp)
	}
}

func TestWorkloadProfileDisabled(t *testing.T) {
	opts := DefaultOptions(vfs.NewMem(), "db")
	opts.DisableProfiler = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if wp := db.WorkloadProfile(); wp.Enabled {
		t.Fatal("profile should report disabled")
	}
}

// TestTenantTableCap is the cardinality-bound regression: 10k distinct
// tenant prefixes must hold the profiler's tenant table at its cap,
// with the overflow folded into the "other" bucket.
func TestTenantTableCap(t *testing.T) {
	tt := newTenantTable(profMaxTenants)
	for i := 0; i < 10000; i++ {
		key := []byte(fmt.Sprintf("tenant%05d/key", i))
		tt.observe(key, profGet, 1)
	}
	tt.mu.Lock()
	size := len(tt.m)
	tt.mu.Unlock()
	if size > profMaxTenants {
		t.Fatalf("tenant table grew to %d rows, cap is %d", size, profMaxTenants)
	}
	rows := tt.rows()
	if len(rows) > profMaxTenants+1 {
		t.Fatalf("%d tenant rows reported, cap is %d + other", len(rows), profMaxTenants)
	}
	last := rows[len(rows)-1]
	if last.Tenant != "other" || last.Ops == 0 {
		t.Fatalf("evicted tenants not folded into other bucket: %+v", last)
	}
	// A persistently busy tenant stays tracked through further churn.
	busy := []byte("busy/key")
	for i := 0; i < 1000; i++ {
		tt.observe(busy, profPut, 1)
	}
	for i := 0; i < 5000; i++ {
		tt.observe([]byte(fmt.Sprintf("churn%05d/key", i)), profGet, 1)
	}
	found := false
	for _, r := range tt.rows() {
		if r.Tenant == "busy" {
			found = true
			if r.Puts == 0 {
				t.Errorf("busy tenant lost its put counts: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("high-traffic tenant evicted by one-shot churn")
	}
}

func TestTenantTableDecay(t *testing.T) {
	tt := newTenantTable(8)
	tt.observe([]byte("a/k"), profGet, 4)
	tt.halve()
	tt.halve()
	tt.halve()
	if rows := tt.rows(); len(rows) != 0 {
		t.Fatalf("fully decayed tenant still reported: %+v", rows)
	}
}

func TestMergeProfiles(t *testing.T) {
	a := WorkloadProfile{
		Enabled: true, WindowOps: 100, Rotations: 2,
		Gets: 80, Puts: 20, Scans: 4, ScanEntries: 40,
		IngestedBytes: 1000, DistinctKeys: 50,
		TopKeys: []sketch.HotKey{{Key: "x", Count: 30}, {Key: "y", Count: 10}},
		Tenants: []TenantWorkload{{Tenant: "t1", Gets: 80, Ops: 100}},
		Levels: []LevelProfile{{
			Level: 0, RunsProbed: 160, BytesWritten: 2000,
			WriteByReason: map[string]int64{"flush": 2000},
		}},
		SpaceBytesTotal: 3000, SpaceBytesDeepest: 2000,
	}
	b := WorkloadProfile{
		Enabled: true, WindowOps: 100, Rotations: 3,
		Gets: 20, Puts: 80, Scans: 6, ScanEntries: 20,
		IngestedBytes: 3000, DistinctKeys: 70,
		TopKeys: []sketch.HotKey{{Key: "x", Count: 20}},
		Tenants: []TenantWorkload{{Tenant: "t1", Gets: 10, Ops: 40}, {Tenant: "t2", Ops: 60}},
		Levels: []LevelProfile{{
			Level: 0, RunsProbed: 40, BytesWritten: 6000,
			WriteByReason: map[string]int64{"flush": 4000, "run-count": 2000},
		}},
		SpaceBytesTotal: 5000, SpaceBytesDeepest: 4000,
	}
	m := MergeProfiles([]WorkloadProfile{a, b, {}}) // disabled shard is skipped
	if !m.Enabled {
		t.Fatal("merge of enabled shards should be enabled")
	}
	if m.Gets != 100 || m.Puts != 100 || m.Scans != 10 {
		t.Fatalf("op sums wrong: %+v", m)
	}
	if m.MeanScanLen != 6 {
		t.Errorf("mean scan len = %f, want 6", m.MeanScanLen)
	}
	if m.DistinctKeys != 120 {
		t.Errorf("distinct keys = %d, want 120 (disjoint shard sum)", m.DistinctKeys)
	}
	if m.Rotations != 3 {
		t.Errorf("rotations = %d, want max 3", m.Rotations)
	}
	if len(m.TopKeys) == 0 || m.TopKeys[0].Key != "x" || m.TopKeys[0].Count != 50 {
		t.Fatalf("top keys not merged by count: %+v", m.TopKeys)
	}
	var t1 *TenantWorkload
	for i := range m.Tenants {
		if m.Tenants[i].Tenant == "t1" {
			t1 = &m.Tenants[i]
		}
	}
	if t1 == nil || t1.Gets != 90 || t1.Ops != 140 {
		t.Fatalf("tenant t1 not merged: %+v", m.Tenants)
	}
	if len(m.Levels) != 1 || m.Levels[0].RunsProbed != 200 {
		t.Fatalf("levels not merged: %+v", m.Levels)
	}
	if m.Levels[0].WriteByReason["flush"] != 6000 || m.Levels[0].WriteByReason["run-count"] != 2000 {
		t.Fatalf("write reasons not merged: %+v", m.Levels[0].WriteByReason)
	}
	if got, want := m.ReadAmp, 200.0/100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("read amp = %f, want %f", got, want)
	}
	if got, want := m.WriteAmp, 8000.0/4000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("write amp = %f, want %f", got, want)
	}
	if got, want := m.SpaceAmp, 8000.0/6000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("space amp = %f, want %f", got, want)
	}
}

func TestFitZipf(t *testing.T) {
	uniform := []sketch.HotKey{{Key: "a", Count: 100}, {Key: "b", Count: 100}, {Key: "c", Count: 100}, {Key: "d", Count: 100}}
	if s := fitZipf(uniform); s > 0.05 {
		t.Errorf("uniform counts fit s=%f, want ~0", s)
	}
	zipf := make([]sketch.HotKey, 8)
	for i := range zipf {
		zipf[i] = sketch.HotKey{Key: fmt.Sprintf("k%d", i), Count: uint64(100000 / (i + 1))}
	}
	if s := fitZipf(zipf); s < 0.8 || s > 1.2 {
		t.Errorf("1/rank counts fit s=%f, want ~1", s)
	}
	if s := fitZipf(zipf[:2]); s != 0 {
		t.Errorf("two ranks fit s=%f, want 0 (insufficient)", s)
	}
}

// TestProfilerOverheadGuard is the bench-smoke gate: with the profiler
// enabled (the default), hot-get latency must stay within 3% of a
// profiler-disabled open, and the hot path must stay allocation-free.
// Wall-clock measurement, so it is opt-in via PROFILER_GUARD=1.
func TestProfilerOverheadGuard(t *testing.T) {
	if os.Getenv("PROFILER_GUARD") == "" {
		t.Skip("set PROFILER_GUARD=1 to run the wall-clock overhead gate")
	}
	build := func(disable bool) (*DB, []byte) {
		opts := DefaultOptions(vfs.NewMem(), "db")
		opts.DisableProfiler = disable
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		val := make([]byte, 100)
		for i := 0; i < 2000; i++ {
			if err := db.Put([]byte(fmt.Sprintf("sst%06d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		key := []byte("sst001000")
		for i := 0; i < 64; i++ {
			if _, err := db.Get(key); err != nil {
				t.Fatal(err)
			}
		}
		return db, key
	}
	// Best-of-N with the on/off reps interleaved: the minimum is the
	// standard robust estimator for "how fast can this go", and
	// alternating the two configurations exposes both to the same
	// machine drift, so the 3% bound compares like with like.
	run := func(db *DB, key []byte) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if _, err := db.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	dbOn, keyOn := build(false)
	dbOff, keyOff := build(true)
	on, off := math.MaxFloat64, math.MaxFloat64
	var allocs int64
	for i := 0; i < 7; i++ {
		rOn := run(dbOn, keyOn)
		rOff := run(dbOff, keyOff)
		if v := float64(rOn.NsPerOp()); v < on {
			on = v
		}
		if v := float64(rOff.NsPerOp()); v < off {
			off = v
		}
		allocs = rOn.AllocsPerOp()
	}
	t.Logf("hot get: profiler on %.1f ns/op, off %.1f ns/op (%.2f%% overhead)",
		on, off, 100*(on-off)/off)
	if allocs != 0 {
		t.Errorf("profiled hot get allocates %d allocs/op, want 0", allocs)
	}
	if on > off*1.03 {
		t.Errorf("profiler overhead %.2f%% exceeds the 3%% budget (on=%.1fns off=%.1fns)",
			100*(on-off)/off, on, off)
	}
}
