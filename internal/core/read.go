package core

import (
	"bytes"
	"errors"
	"sync"

	"lsmlab/internal/admission"
	"lsmlab/internal/bloom"
	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
	"lsmlab/internal/sstable"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
	"lsmlab/internal/wisckey"
)

// readScratch carries the reusable buffers of one point lookup: the
// memtable slice of the view, the search key shared by every probe,
// and the sstable cursors. Pooled so the steady-state get path does
// zero heap allocations (proved by BenchmarkGetHot).
type readScratch struct {
	mems   []*memWrapper
	search []byte
	sst    sstable.GetScratch
	// sink is the profiler's level-tagging ReadStats shim; living in
	// the pooled scratch keeps its injection allocation-free.
	sink profSink
}

var readScratchPool = sync.Pool{New: func() any { return new(readScratch) }}

type wiscPointer = wisckey.Pointer

// readView is a consistent snapshot of the read sources: the mutable
// buffer, the immutable queue (newest first), and the tree version.
type readView struct {
	mems    []*memWrapper // newest first
	version *manifest.Version
	seq     kv.SeqNum
}

// acquireView captures the sources under the DB lock.
func (db *DB) acquireView(snap kv.SeqNum) readView {
	return db.acquireViewInto(snap, nil)
}

// acquireViewInto is acquireView reusing a caller-owned memtable slice
// (the pooled scratch of the get path), so a steady-state lookup does
// not allocate the view.
func (db *DB) acquireViewInto(snap kv.SeqNum, mems []*memWrapper) readView {
	db.mu.Lock()
	defer db.mu.Unlock()
	if cap(mems) < len(db.imm)+1 {
		mems = make([]*memWrapper, 0, len(db.imm)+4)
	} else {
		mems = mems[:0]
	}
	mems = append(mems, db.mem)
	for i := len(db.imm) - 1; i >= 0; i-- {
		mems = append(mems, db.imm[i])
	}
	// Read views are bounded by the published watermark, not the
	// allocation cursor: a commit group still applying to the memtable
	// must stay invisible so no sequence-number hole can be observed.
	if snap == 0 {
		snap = kv.SeqNum(db.visibleSeq.Load())
	}
	return readView{mems: mems, version: db.version, seq: snap}
}

// Get returns the current value of key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.get(key, 0, 0) }

// GetTraced is Get carrying a wire-propagated trace id: the lookup's
// span adopts the id (0 mints a fresh one) and is always retained in
// the tracer's ring, so a client-requested trace can be found later via
// /traces. Without a tracer it behaves exactly like Get.
func (db *DB) GetTraced(key []byte, traceID uint64) ([]byte, error) {
	return db.get(key, 0, traceID)
}

func (db *DB) get(key []byte, snap kv.SeqNum, traceID uint64) ([]byte, error) {
	if !db.timeOps {
		return db.getInner(key, snap, traceID)
	}
	// Timed wrapper kept out of the common body: a deferred closure
	// capturing start would cost an allocation per get.
	start := db.opts.NowNs()
	v, err := db.getInner(key, snap, traceID)
	db.m.GetNs.RecordSince(start, db.opts.NowNs())
	return v, err
}

func (db *DB) getInner(key []byte, snap kv.SeqNum, traceID uint64) ([]byte, error) {
	// The get counter's return value doubles as the profiler's sampling
	// clock: every profSample-th lookup feeds the sketches and carries
	// the level-tagging sink (weighted back up by the sampling factor),
	// so the common get pays the always-on profiler nothing beyond the
	// counter increment it already did. One hash serves the profiler and
	// every Bloom probe (hash sharing, §2.1.3).
	n := db.m.Gets.Add(1)
	hash := bloom.Hash64(key)
	profiled := db.prof != nil && profSampled(uint64(n))
	if profiled {
		db.prof.observe(profGet, hash, key)
	}
	var sp *trace.Span
	var st sstable.ReadStats
	if db.tracer != nil {
		sp = db.tracer.StartID(trace.OpGet, traceID)
		if sp != nil { // head sampling may have declined this op
			if traceID != 0 {
				sp.Retain() // explicitly requested over the wire
			}
			sp.SetTenant(admission.TenantOf(key))
			st = &tracedSink{m: &db.m, sp: sp}
			defer db.tracer.Finish(sp)
		}
	}
	var t0 int64
	if sp != nil {
		t0 = db.opts.NowNs()
	}
	sc := readScratchPool.Get().(*readScratch)
	e, err := db.getEntryWith(key, hash, profiled, snap, sp, st, sc)
	if sp != nil {
		sp.StageSince("search", t0, db.opts.NowNs())
	}
	if err != nil {
		readScratchPool.Put(sc)
		if err != ErrNotFound {
			sp.SetErr(err)
		}
		return nil, err
	}
	// e.Key aliases the scratch; read everything needed from it before
	// the scratch returns to the pool. e.Value aliases the memtable or
	// an immutable cached block and stays valid.
	kind := e.Kind()
	readScratchPool.Put(sc)
	switch kind {
	case kv.KindSet:
		db.m.GetHits.Add(1)
		sp.AddBytes(int64(len(e.Value)))
		return e.Value, nil
	case kv.KindMerge:
		// Slow path: walk the key's full visible history to fold the
		// operands onto their base (§2.2.6).
		if sp != nil {
			t0 = db.opts.NowNs()
		}
		view := db.acquireView(snap)
		v, err := db.resolveMergeSlow(view, key, view.seq)
		if sp != nil {
			sp.StageSince("merge", t0, db.opts.NowNs())
		}
		if err != nil {
			sp.SetErr(err)
			return nil, err
		}
		db.m.GetHits.Add(1)
		sp.AddBytes(int64(len(v)))
		return v, nil
	case kv.KindValuePointer:
		p, err := wisckey.DecodePointer(e.Value)
		if err != nil {
			sp.SetErr(err)
			return nil, err
		}
		if sp != nil {
			t0 = db.opts.NowNs()
		}
		v, err := db.vlog.Read(p)
		if sp != nil {
			sp.AddVlogRead()
			sp.StageSince("vlog", t0, db.opts.NowNs())
		}
		if err != nil {
			sp.SetErr(err)
			return nil, err
		}
		db.m.GetHits.Add(1)
		sp.AddBytes(int64(len(v)))
		return v, nil
	default:
		return nil, ErrNotFound
	}
}

// getEntry returns the newest visible raw entry (which may be a
// tombstone or value pointer), with range tombstones applied.
// It retries when a racing compaction deletes a file mid-read.
func (db *DB) getEntry(key []byte, snap kv.SeqNum) (kv.Entry, error) {
	sc := readScratchPool.Get().(*readScratch)
	e, err := db.getEntryWith(key, bloom.Hash64(key), false, snap, nil, nil, sc)
	if err == nil {
		e = e.Clone() // detach from the scratch for non-hot-path callers
	}
	readScratchPool.Put(sc)
	return e, err
}

// getEntryWith is getEntry with the key's precomputed hash, the
// profiler's sampling decision, an optional span, per-operation read
// stats sink (both nil on untraced lookups), and the caller's pooled
// scratch. The returned entry's key aliases sc.
func (db *DB) getEntryWith(key []byte, hash uint64, profiled bool, snap kv.SeqNum, sp *trace.Span, st sstable.ReadStats, sc *readScratch) (kv.Entry, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return kv.Entry{}, ErrClosed
	}
	db.mu.Unlock()
	// Each attempt takes a fresh view, so a lookup only fails if a racing
	// compaction deletes a just-referenced file on every attempt — the
	// generous bound covers schedulers that starve the reader (GOMAXPROCS
	// of 1 under the race detector).
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		view := db.acquireViewInto(snap, sc.mems)
		sc.mems = view.mems // retain the slice's capacity in the scratch
		e, ok, err := db.searchView(view, key, hash, profiled, sp, st, sc)
		if err != nil {
			if isMissingFile(err) {
				lastErr = err
				continue // version changed under us; retry with a fresh view
			}
			return kv.Entry{}, err
		}
		if !ok {
			return kv.Entry{}, ErrNotFound
		}
		return e, nil
	}
	return kv.Entry{}, lastErr
}

func isMissingFile(err error) bool { return errors.Is(err, vfs.ErrNotExist) }

// searchView walks the sources newest to oldest, maintaining the
// highest covering range-tombstone sequence seen so far. The first
// point entry found is the newest visible version; it is live only if
// no newer range tombstone covers it (tutorial §2.1.2 Get). The
// returned entry's key aliases sc; the probe chain allocates nothing.
func (db *DB) searchView(view readView, key []byte, hash uint64, profiled bool, sp *trace.Span, st sstable.ReadStats, sc *readScratch) (kv.Entry, bool, error) {
	var maxRT kv.SeqNum
	// One search key serves every memtable and run probe.
	sc.search = kv.AppendSearchKey(sc.search[:0], key, view.seq)
	// On a sampled lookup, probes report through the scratch's
	// level-tagging sink, which forwards to the usual metrics (or
	// traced) sink and attributes each block fetch to its level with
	// the sampling weight.
	if profiled {
		if st == nil {
			sc.sink.base = db.stSink
		} else {
			sc.sink.base = st
		}
		sc.sink.lv = db.prof.levels
		sc.sink.w = profSample
		st = &sc.sink
	}

	// Memtables.
	for _, mw := range view.mems {
		for _, rt := range mw.rangeTombstones() {
			if rt.Seq <= view.seq && rt.Seq > maxRT &&
				bytes.Compare(rt.Start, key) <= 0 && bytes.Compare(key, rt.End) < 0 {
				maxRT = rt.Seq
			}
		}
		if e, ok := mw.mt.GetSeek(sc.search, key, view.seq); ok {
			if e.Seq() < maxRT {
				return kv.Entry{}, false, nil // shadowed by a range delete
			}
			return e, true, nil
		}
	}

	// Disk levels: L0 runs newest first, then deeper levels.
	for lvl, level := range view.version.Levels {
		if profiled {
			sc.sink.level = lvl
		}
		for _, run := range level.Runs {
			f := run.FindFile(key)
			if f == nil {
				continue
			}
			r, err := db.tcache.acquireRef(f.Num)
			if err != nil {
				return kv.Entry{}, false, err
			}
			for _, rt := range r.RangeTombstones() {
				if rt.Seq <= view.seq && rt.Seq > maxRT && rt.Covers(key, 0) {
					maxRT = rt.Seq
				}
			}
			db.m.RunsProbed.Add(1)
			if profiled {
				db.prof.levels[lvl].runsProbed.Add(profSample)
			}
			sp.AddRun()
			e, ok, err := r.GetScratched(key, sc.search, hash, st, &sc.sst)
			if err != nil {
				db.tcache.release(f.Num)
				return kv.Entry{}, false, err
			}
			if ok {
				// Safe to release before returning: e aliases the scratch
				// and the cached block, not the reader's file.
				db.tcache.release(f.Num)
				if e.Seq() < maxRT {
					return kv.Entry{}, false, nil // shadowed by a range delete
				}
				return e, true, nil
			}
			if len(r.RangeTombstones()) == 0 && r.FilterSizeBytes() > 0 {
				// The filter passed but the key was absent: a false
				// positive worth counting (only unambiguous without
				// range tombstones extending the key range).
				db.m.FilterFalsePos.Add(1)
				sp.AddFalsePositive()
			}
			db.tcache.release(f.Num)
		}
	}

	if maxRT > 0 {
		return kv.Entry{}, false, nil
	}
	return kv.Entry{}, false, nil
}

// pointerIsLive reports whether p is still the live value location of
// key — the WiscKey GC liveness check.
func (db *DB) pointerIsLive(key []byte, p wisckey.Pointer) (bool, error) {
	e, err := db.getEntry(key, 0)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if e.Kind() != kv.KindValuePointer {
		return false, nil
	}
	cur, err := wisckey.DecodePointer(e.Value)
	if err != nil {
		return false, err
	}
	return cur == p, nil
}

// KV is one key-value pair returned by Scan.
type KV struct {
	Key   []byte
	Value []byte
}

// Scan returns up to limit live entries with keys in [start, end);
// limit <= 0 means unlimited. It is a convenience wrapper over
// NewIterator (tutorial §2.1.2 Scan).
func (db *DB) Scan(start, end []byte, limit int) ([]KV, error) {
	return db.scan(start, end, limit, 0)
}

// ScanTraced is Scan carrying a wire-propagated trace id: the scan's
// span adopts the id (0 mints a fresh one) and is always retained in
// the tracer's ring. Without a tracer it behaves exactly like Scan.
func (db *DB) ScanTraced(start, end []byte, limit int, traceID uint64) ([]KV, error) {
	return db.scan(start, end, limit, traceID)
}

func (db *DB) scan(start, end []byte, limit int, traceID uint64) ([]KV, error) {
	if db.prof != nil {
		if h := bloom.Hash64(start); db.prof.tick(h) {
			db.prof.observe(profScan, h, start)
		}
	}
	var sp *trace.Span
	if db.tracer != nil {
		sp = db.tracer.StartID(trace.OpScan, traceID)
		if sp != nil { // head sampling may have declined this op
			if traceID != 0 {
				sp.Retain() // explicitly requested over the wire
			}
			sp.SetTenant(admission.TenantOf(start))
			defer db.tracer.Finish(sp)
		}
	}
	it, err := db.NewIterator(IterOptions{LowerBound: start, UpperBound: end})
	if err != nil {
		sp.SetErr(err)
		return nil, err
	}
	defer it.Close()
	var t0 int64
	if sp != nil {
		t0 = db.opts.NowNs()
	}
	var out []KV
	var bytes int64
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, KV{Key: cp(it.Key()), Value: cp(it.Value())})
		bytes += int64(len(it.Key()) + len(it.Value()))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	err = it.Err()
	db.m.ScanEntries.Add(int64(len(out)))
	if sp != nil {
		sp.StageSince("iterate", t0, db.opts.NowNs())
		sp.AddEntries(len(out))
		sp.AddBytes(bytes)
		sp.SetErr(err)
	}
	return out, err
}
