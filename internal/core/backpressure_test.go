package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lsmlab/internal/events"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// This file covers the stall-to-throttle half of the overload story
// (DESIGN.md §2h): Options.StallTimeout turns an unbounded write stall
// into a typed ErrBackpressure abort, and the abort must keep every
// invariant the blocking path had — WriteStallBegin/WriteStallEnd
// events pair, StallNs is recorded exactly once, nothing of the
// aborted batch is durable, and the engine serves normally once the
// flush backlog drains.

// gateFS blocks table-file creation until the gate channel is closed,
// pinning the write path in a stall for as long as the test wants.
type gateFS struct {
	vfs.FS
	gate chan struct{}
}

func (f gateFS) Create(name string) (vfs.File, error) {
	if vfs.HasSuffix(name, ".sst") {
		<-f.gate
	}
	return f.FS.Create(name)
}

func TestStallTimeoutAbortsWithBackpressure(t *testing.T) {
	gate := make(chan struct{})
	db, _ := testDB(t, func(o *Options) {
		o.FS = gateFS{FS: vfs.NewMem(), gate: gate}
		o.BufferBytes = 1 << 10
		o.MaxImmutableBuffers = 1
		o.StallTimeout = 25 * time.Millisecond
	})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()

	// With flushes gated, ingestion must hit the stall and abort.
	var bpErr error
	for i := 0; i < 200 && bpErr == nil; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 256)); err != nil {
			bpErr = err
		}
	}
	if bpErr == nil {
		t.Fatal("gated flush never produced a backpressure abort")
	}
	if !errors.Is(bpErr, ErrBackpressure) {
		t.Fatalf("stall abort error = %v, want ErrBackpressure", bpErr)
	}
	var be *BackpressureError
	if !errors.As(bpErr, &be) || be.WaitedNs < int64(20*time.Millisecond) {
		t.Fatalf("typed error %+v, want *BackpressureError with ~25ms wait", bpErr)
	}
	m := db.Metrics()
	if m.StallAborts == 0 || m.WriteStalls == 0 || m.StallNs == 0 {
		t.Fatalf("stall abort accounting: aborts=%d stalls=%d stall_ns=%d",
			m.StallAborts, m.WriteStalls, m.StallNs)
	}

	// Backpressure is transient, not sticky: once the device drains the
	// backlog, writes succeed again with no operator intervention.
	release()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := db.Put([]byte("recovered"), []byte("v")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered after the flush gate opened")
		}
	}
	if h := db.Health(); h.Degraded {
		t.Fatalf("backpressure degraded the engine: %+v", h)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStallAbortPairsEvents is the regression test for the
// degradation/timeout-mid-stall accounting (run it with -race; the CI
// race job does): however a stall ends — room appearing, StallTimeout
// abort, or the engine degrading under the stalled writer — every
// WriteStallBegin has exactly one WriteStallEnd and StallNs grows
// exactly once per stall episode.
func TestStallAbortPairsEvents(t *testing.T) {
	t.Run("timeout-abort", func(t *testing.T) {
		ring := events.NewRing(16384)
		gate := make(chan struct{})
		db, _ := testDB(t, func(o *Options) {
			o.FS = gateFS{FS: vfs.NewMem(), gate: gate}
			o.BufferBytes = 1 << 10
			o.MaxImmutableBuffers = 1
			o.StallTimeout = 5 * time.Millisecond
			o.EventListener = ring
		})
		var wg sync.WaitGroup
		var aborts int64
		var mu sync.Mutex
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					err := db.Put([]byte(fmt.Sprintf("w%d-k%04d", w, i)), make([]byte, 256))
					if errors.Is(err, ErrBackpressure) {
						mu.Lock()
						aborts++
						mu.Unlock()
					} else if err != nil {
						t.Errorf("unexpected write error: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(gate)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		if aborts == 0 {
			t.Fatal("no writer observed a backpressure abort; gating setup is broken")
		}
		verifyStallPairing(t, ring, db)
	})

	t.Run("degradation-abort", func(t *testing.T) {
		ring := events.NewRing(16384)
		base := vfs.NewMem()
		ffs := faultfs.New(base, 1)
		opts := DefaultOptions(ffs, "db")
		opts.BufferBytes = 2 << 10
		opts.MaxImmutableBuffers = 1
		opts.MaxBackgroundRetries = -1 // degrade on the first failure
		opts.EventListener = ring
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		ffs.AddRule(faultfs.Rule{
			Classes:   faultfs.ClassSST,
			Ops:       faultfs.OpWrite | faultfs.OpCreate,
			Countdown: 1,
			Sticky:    true,
		})
		var wg sync.WaitGroup
		degraded := make(chan struct{})
		var once sync.Once
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				deadline := time.Now().Add(30 * time.Second)
				for i := 0; time.Now().Before(deadline); i++ {
					err := db.Put([]byte(fmt.Sprintf("w%d-k%08d", w, i)), make([]byte, 256))
					if errors.Is(err, ErrDegraded) {
						once.Do(func() { close(degraded) })
						return
					}
					select {
					case <-degraded:
						return
					default:
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case <-degraded:
		default:
			t.Fatal("writers never observed the degradation")
		}
		// Close surfaces the sticky degradation error by design; the
		// pairing invariant is what this subtest is about.
		_ = db.Close()
		verifyStallPairing(t, ring, db)
	})
}

// verifyStallPairing checks the Begin/End/StallNs invariants against
// the event ring and the engine counters.
func verifyStallPairing(t *testing.T, ring *events.Ring, db *DB) {
	t.Helper()
	var begins, ends int
	for _, e := range ring.Events() {
		switch e.Type {
		case events.WriteStallBegin:
			begins++
		case events.WriteStallEnd:
			ends++
			if e.DurationNs <= 0 {
				t.Errorf("stall end with non-positive duration: %+v", e)
			}
		}
	}
	if uint64(len(ring.Events())) != ring.Total() {
		t.Fatalf("event ring overflowed (%d kept of %d); grow the ring", len(ring.Events()), ring.Total())
	}
	if begins != ends {
		t.Fatalf("stall begins %d != ends %d", begins, ends)
	}
	m := db.Metrics()
	if m.WriteStalls != int64(begins) {
		t.Fatalf("WriteStalls counter %d != stall begin events %d", m.WriteStalls, begins)
	}
	if begins > 0 && m.StallNs <= 0 {
		t.Fatalf("stalls occurred but StallNs = %d", m.StallNs)
	}
}

// TestTortureThrottleCrash is the throttle+crash torture loop of the
// overload PR: seeded iterations drive a slow device into repeated
// stall-timeout aborts, crash mid-stream (torn tails included), and
// verify on recovery that every acknowledged write is durable and no
// backpressure-aborted write is ever visible — aborts happen before
// sequence assignment and WAL append, so a throttled batch must be
// absent, not garbage.
func TestTortureThrottleCrash(t *testing.T) {
	iters := tortureIters(t, 12)
	const baseSeed = 20260808
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed%d", baseSeed+it), func(t *testing.T) {
			tortureThrottleOnce(t, int64(baseSeed+it))
		})
	}
}

func tortureThrottleOnce(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	base := vfs.NewMem()
	ffs := faultfs.New(base, seed)
	fs := slowSSTFS{FS: ffs, delay: time.Duration(2+r.Intn(3)) * time.Millisecond}
	opts := DefaultOptions(fs, "db")
	opts.SyncWAL = true // acked ⇒ durable is half the property under test
	opts.BufferBytes = 1 << 10
	opts.MaxImmutableBuffers = 1
	opts.StallTimeout = time.Duration(1+r.Intn(2)) * time.Millisecond
	opts.Workers = 1

	db, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	model := map[string]string{}       // acked: must survive the crash
	forbidden := map[string][]string{} // backpressure-aborted: must not
	throttled := 0
	totalOps := 80 + r.Intn(80)
	for i := 0; i < totalOps; i++ {
		k := fmt.Sprintf("k%03d", r.Intn(48))
		v := fmt.Sprintf("s%d-i%d", seed, i)
		err := db.Put([]byte(k), []byte(v))
		switch {
		case err == nil:
			model[k] = v
		case errors.Is(err, ErrBackpressure):
			throttled++
			forbidden[k] = append(forbidden[k], v)
		default:
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}

	crashDB(db)
	if err := ffs.Crash(); err != nil {
		t.Fatalf("crash simulation: %v", err)
	}

	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	for i := 0; i < 48; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, err := db2.Get([]byte(k))
		var got string
		switch {
		case err == nil:
			got = string(v)
		case errors.Is(err, ErrNotFound):
			got = tortureNotFound
		default:
			t.Fatalf("get %s after recovery: %v", k, err)
		}
		want, acked := model[k]
		if acked && got != want {
			t.Fatalf("acked write lost: key %s = %q, want %q (throttled=%d)", k, got, want, throttled)
		}
		if !acked && got != tortureNotFound {
			t.Fatalf("key %s = %q after crash but was never acked (throttled=%d)", k, got, throttled)
		}
		for _, f := range forbidden[k] {
			if got == f {
				t.Fatalf("backpressure-aborted write surfaced after crash: key %s = %q", k, got)
			}
		}
	}
}
