package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lsmlab/internal/compaction"
	"lsmlab/internal/memtable"
	"lsmlab/internal/vfs"
)

// testDB opens a DB over a fresh MemFS with small buffers so that
// flushes and compactions trigger quickly.
func testDB(t *testing.T, mutate func(*Options)) (*DB, vfs.FS) {
	t.Helper()
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.BufferBytes = 8 << 10
	opts.TargetFileSize = 16 << 10
	opts.BaseLevelBytes = 32 << 10
	opts.NumLevels = 4
	opts.SizeRatio = 4
	opts.Paranoid = true
	if mutate != nil {
		mutate(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, fs
}

func TestPutGetDelete(t *testing.T) {
	db, _ := testDB(t, nil)
	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := db.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ = db.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("update lost: %q", v)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if _, err := db.Get([]byte("never")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
}

func TestGetAcrossFlush(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.TreeStats().TotalFiles == 0 {
		t.Fatal("flush produced no files")
	}
	for i := 0; i < 100; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("key %d after flush: %q %v", i, v, err)
		}
	}
	// Newer memtable data shadows flushed data.
	db.Put([]byte("key-050"), []byte("new"))
	if v, _ := db.Get([]byte("key-050")); string(v) != "new" {
		t.Fatalf("memtable must shadow disk: %q", v)
	}
}

func TestDeleteShadowsFlushedData(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone in memtable must shadow disk: %v", err)
	}
	db.Flush()
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone on disk must shadow deeper run: %v", err)
	}
}

// applyRandomWorkload drives db and a model map identically.
func applyRandomWorkload(t *testing.T, db *DB, seed int64, ops, keySpace int) map[string]string {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	model := make(map[string]string)
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key-%05d", r.Intn(keySpace))
		switch r.Intn(10) {
		case 0, 1: // delete
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		default:
			v := fmt.Sprintf("val-%d-%d", i, r.Intn(1000))
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	return model
}

// verifyAgainstModel checks every model key and a sample of absent keys.
func verifyAgainstModel(t *testing.T, db *DB, model map[string]string, keySpace int) {
	t.Helper()
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(v) != want {
			t.Fatalf("get %s: %q want %q", k, v, want)
		}
	}
	for i := 0; i < keySpace; i++ {
		k := fmt.Sprintf("key-%05d", i)
		if _, inModel := model[k]; !inModel {
			if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %s should be absent: %v", k, err)
			}
		}
	}
	// Full scan must equal the sorted model.
	got, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("scan found %d keys, model has %d", len(got), len(model))
	}
	var prev string
	for _, kvp := range got {
		k := string(kvp.Key)
		if k <= prev {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = k
		if model[k] != string(kvp.Value) {
			t.Fatalf("scan %s: %q want %q", k, kvp.Value, model[k])
		}
	}
}

func layoutsUnderTest() map[string]compaction.Layout {
	return map[string]compaction.Layout{
		"leveling":      compaction.Leveling{},
		"tiering":       compaction.Tiering{K: 3},
		"lazy-leveling": compaction.LazyLeveling{K: 3},
		"tiered-first":  compaction.TieredFirst{K0: 3},
	}
}

func TestRandomWorkloadAllLayouts(t *testing.T) {
	for name, layout := range layoutsUnderTest() {
		t.Run(name, func(t *testing.T) {
			db, _ := testDB(t, func(o *Options) { o.Layout = layout })
			model := applyRandomWorkload(t, db, 42, 5000, 800)
			db.WaitIdle()
			verifyAgainstModel(t, db, model, 800)
			if ts := db.TreeStats(); ts.TotalFiles == 0 {
				t.Error("workload should have produced files")
			}
			if db.Metrics().Compactions == 0 {
				t.Error("workload should have triggered compactions")
			}
		})
	}
}

func TestRandomWorkloadAllMemtables(t *testing.T) {
	for _, kind := range []memtable.Kind{
		memtable.KindSkipList, memtable.KindVector,
		memtable.KindHashSkipList, memtable.KindHashLinkList,
	} {
		t.Run(string(kind), func(t *testing.T) {
			db, _ := testDB(t, func(o *Options) { o.MemtableKind = kind })
			model := applyRandomWorkload(t, db, 7, 3000, 500)
			db.WaitIdle()
			verifyAgainstModel(t, db, model, 500)
		})
	}
}

func TestManualCompactToBottom(t *testing.T) {
	db, _ := testDB(t, nil)
	model := applyRandomWorkload(t, db, 3, 4000, 600)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	ts := db.TreeStats()
	for i := 0; i < len(ts.Levels)-1; i++ {
		if ts.Levels[i].Files != 0 {
			t.Errorf("L%d should be empty after manual compaction, has %d files", i, ts.Levels[i].Files)
		}
	}
	if ts.Levels[len(ts.Levels)-1].Files == 0 {
		t.Error("bottom level empty after manual compaction")
	}
	verifyAgainstModel(t, db, model, 600)
	// Tombstones must be fully purged at the bottom.
	bottom := db.Version().Levels[db.opts.NumLevels-1]
	for _, r := range bottom.Runs {
		for _, f := range r.Files {
			if f.NumTombstones != 0 {
				t.Errorf("file %d retains %d tombstones after full compaction", f.Num, f.NumTombstones)
			}
		}
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.BufferBytes = 1 << 20 // large: nothing flushes
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	db.Delete([]byte("k005"))
	db.DeleteRange([]byte("k100"), []byte("k110"))
	// Simulate a crash: do NOT close. Reopen over the same FS.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k000")); err != nil || string(v) != "v000" {
		t.Fatalf("recovered value: %q %v", v, err)
	}
	if _, err := db2.Get([]byte("k005")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("recovered tombstone: %v", err)
	}
	for i := 100; i < 110; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("recovered range delete at %d: %v", i, err)
		}
	}
	if v, err := db2.Get([]byte("k110")); err != nil || string(v) != "v110" {
		t.Fatalf("range delete end must be exclusive: %q %v", v, err)
	}
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.BufferBytes = 4 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	model := applyRandomWorkload(t, db, 11, 2000, 300)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verifyAgainstModel(t, db2, model, 300)
	// Sequence numbers must continue past recovery.
	preSeq := db2.lastSeq.Load()
	db2.Put([]byte("post"), []byte("x"))
	if db2.lastSeq.Load() <= preSeq {
		t.Error("sequence numbers must be monotone across recovery")
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(DefaultOptions(fs, "db"))
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Errorf("get after close: %v", err)
	}
	if _, err := db.NewIterator(IterOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("iterator after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db, _ := testDB(t, nil)
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if b.Len() != 3 {
		t.Fatal("batch length")
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Error("in-batch delete must win over earlier put")
	}
	if v, _ := db.Get([]byte("b")); string(v) != "2" {
		t.Error("batch put lost")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("reset")
	}
	if err := db.Apply(&b); err != nil {
		t.Error("empty batch must be a no-op")
	}
}
