package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lsmlab/internal/events"
	"lsmlab/internal/sstable"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// fillBuffer writes enough distinct keys to exceed BufferBytes.
func fillBuffer(t *testing.T, db *DB, round int) {
	t.Helper()
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("r%02d-k%03d", round, i))
		if err := db.Put(k, make([]byte, 100)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
}

// TestPersistentFlushFailureDegrades drives the full degradation story:
// a sticky device fault exhausts the flush retries, the engine goes
// read-only, writes fail fast with the typed cause, reads keep serving,
// and every surface (Health, FormatStats, events, metrics) agrees.
func TestPersistentFlushFailureDegrades(t *testing.T) {
	ring := events.NewRing(1024)
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.MaxBackgroundRetries = 2
	opts.EventListener = ring
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Put([]byte("before"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Every table write fails from here on: the flush retries (with
	// backoff) and then the engine must degrade, not spin.
	ffs.AddRule(faultfs.Rule{
		Classes:   faultfs.ClassSST,
		Ops:       faultfs.OpWrite | faultfs.OpCreate,
		Countdown: 1,
		Sticky:    true,
	})
	fillBuffer(t, db, 0)
	if err := db.Flush(); err == nil {
		t.Fatal("flush against a dead device must error")
	}

	// Degradation is reported, with the failing op and classification.
	waitDegraded(t, db)
	h := db.Health()
	if h.Op != "flush" || h.Kind != "transient" || h.Cause == "" {
		t.Fatalf("health misses the root cause: %+v", h)
	}

	// Writes fail fast with the typed sentinel and the cause attached.
	err = db.Put([]byte("doomed"), []byte("v"))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("put on degraded engine: got %v, want ErrDegraded", err)
	}
	var de *DegradedError
	if !errors.As(err, &de) || de.Op != "flush" {
		t.Fatalf("degraded error lost its cause: %v", err)
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("degraded error does not unwrap to the device fault: %v", err)
	}

	// Reads keep serving what was already durable or in memory.
	if v, err := db.Get([]byte("before")); err != nil || string(v) != "v" {
		t.Fatalf("read while degraded: %q %v", v, err)
	}

	// Operator surfaces agree.
	if stats := db.FormatStats(false); !strings.Contains(stats, "degraded=true") ||
		!strings.Contains(stats, "op=flush") {
		t.Fatalf("FormatStats misses degradation:\n%s", stats)
	}
	if got := db.Metrics().Degraded; got != 1 {
		t.Fatalf("degraded gauge = %d, want 1", got)
	}
	var entered bool
	for _, e := range ring.Events() {
		if e.Type == events.DegradedEnter {
			entered = true
			if e.Path != "flush" || e.Err == nil {
				t.Fatalf("DegradedEnter event incomplete: %+v", e)
			}
		}
	}
	if !entered {
		t.Fatal("no DegradedEnter event emitted")
	}

	// Close must not hang on the undrainable flush queue, and reports
	// the failure.
	if err := db.Close(); err == nil {
		t.Fatal("close of a degraded engine must surface the error")
	}

	// The acknowledged writes were WAL-protected: reopening over a
	// healthy filesystem recovers all of them.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("r%02d-k%03d", 0, i))
		if _, err := db2.Get(k); err != nil {
			t.Fatalf("key %s lost across degradation + recovery: %v", k, err)
		}
	}
}

// waitDegraded polls Health until the sticky transition lands (the
// worker performs it asynchronously after its final retry).
func waitDegraded(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if db.Health().Degraded {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("engine never degraded; health: %+v", db.Health())
}

// TestCorruptionDegradesImmediately checks the taxonomy short-circuit:
// a corruption-classified failure must not burn retries — the first
// occurrence degrades the engine.
func TestCorruptionDegradesImmediately(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.MaxBackgroundRetries = 100 // would take forever if retried
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ffs.AddRule(faultfs.Rule{
		Classes:   faultfs.ClassSST,
		Ops:       faultfs.OpWrite,
		Countdown: 1,
		Sticky:    true,
		Err:       sstable.ErrCorrupt,
	})
	fillBuffer(t, db, 0)
	if err := db.Flush(); err == nil {
		t.Fatal("flush must error")
	}
	waitDegraded(t, db)
	if h := db.Health(); h.Kind != "corruption" {
		t.Fatalf("kind = %s, want corruption", h.Kind)
	}
	if m := db.Metrics(); m.BgRetries != 1 {
		t.Fatalf("corruption burned %d attempts, want exactly 1", m.BgRetries)
	}
}

// TestTransientFailureRecoversWithoutDegrading is the counterpoint: a
// failure below the retry budget heals, the engine stays writable, and
// the transient error remains visible in Health/stats for forensics.
func TestTransientFailureRecoversWithoutDegrading(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.MaxBackgroundRetries = 3
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// One one-shot failure, then the device heals.
	ffs.Arm(faultfs.ClassSST, faultfs.OpWrite|faultfs.OpCreate, 1)
	fillBuffer(t, db, 0)
	if err := db.Flush(); err == nil {
		t.Fatal("first flush attempt must surface the transient error")
	}
	db.WaitIdle()
	if h := db.Health(); h.Degraded {
		t.Fatalf("transient failure degraded the engine: %+v", h)
	}
	// The retry flushed the buffer; writes still work.
	if err := db.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	// Forensics: the error stays visible without degrading.
	h := db.Health()
	if h.BgErr == "" || h.BgErrOp != "flush" {
		t.Fatalf("transient error not surfaced in health: %+v", h)
	}
	if stats := db.FormatStats(false); !strings.Contains(stats, "degraded=false bg_err_op=flush") {
		t.Fatalf("FormatStats misses the transient error:\n%s", stats)
	}
}

// TestDegradedWritesFailFastWhileStalled checks the broadcast story: a
// writer stalled on a full immutable queue must be woken and failed the
// moment the engine degrades, not hang forever.
func TestDegradedWritesFailFastWhileStalled(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 2 << 10
	opts.MaxImmutableBuffers = 1
	opts.MaxBackgroundRetries = -1 // degrade on the first failure
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ffs.AddRule(faultfs.Rule{
		Classes:   faultfs.ClassSST,
		Ops:       faultfs.OpWrite | faultfs.OpCreate,
		Countdown: 1,
		Sticky:    true,
	})
	// Keep writing until every buffer slot is full and the engine
	// degrades under us; each Put must return — either accepted,
	// stalled-then-failed, or failed fast — never deadlock.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		err := db.Put([]byte(fmt.Sprintf("k%09d", time.Now().UnixNano())), make([]byte, 256))
		if errors.Is(err, ErrDegraded) {
			return // fail-fast observed
		}
	}
	t.Fatal("writes never observed the degradation")
}
