package core

import (
	"fmt"
	"testing"

	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// These tests drive the engine's error paths through the shared
// fault-injection filesystem (internal/vfs/faultfs), which replaced the
// test-local injector this file used to carry.

func TestFlushFailureSurfacesAndDataSurvivesInWAL(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Write one buffer's worth, then make the next table write fail.
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm(faultfs.ClassSST, faultfs.OpWrite, 1)
	err = db.Flush()
	if err == nil {
		t.Fatal("flush with failing device must error")
	}
	// The failure was transient and one-shot: the flush retry succeeds,
	// so the engine must NOT be degraded — only bgErr records it.
	if h := db.Health(); h.Degraded {
		t.Fatalf("single transient failure degraded the engine: %+v", h)
	}
	db.Close()

	// Reopen over the same (now healthy) filesystem: nothing is lost.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("key %d lost after failed flush + recovery: %v", i, err)
		}
	}
}

func TestCompactionFailureKeepsOldVersionReadable(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.Workers = 1
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 300; i++ {
		k, v := fmt.Sprintf("k%03d", i%100), fmt.Sprintf("v%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()

	// Fail the next table write, then force a compaction.
	ffs.Arm(faultfs.ClassSST, faultfs.OpWrite, 2)
	compactErr := db.Compact()
	// Whether or not the error surfaced through Compact (it may land in
	// bgErr), every key must remain readable from the old version.
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s unreadable after failed compaction: %q %v", k, v, err)
		}
	}
	_ = compactErr
	db.Close()

	// After reopen, orphaned partial outputs are swept and data intact.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, want := range model {
		v, err := db2.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s after reopen: %q %v", k, v, err)
		}
	}
	// Orphan sweep: every .sst on disk is referenced by the live version.
	live := db2.Version().LiveFileNums()
	names, _ := base.List("db")
	for _, name := range names {
		if vfs.HasSuffix(name, ".sst") {
			var num uint64
			fmt.Sscanf(name, "%06d.sst", &num)
			if !live[num] {
				t.Errorf("orphan table %s survived recovery", name)
			}
		}
	}
}

func TestWALWriteFailureSurfacesToWriter(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("ok"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(faultfs.ClassWAL, faultfs.OpWrite, 1)
	if err := db.Put([]byte("doomed"), []byte("v")); err == nil {
		t.Fatal("put with failing WAL must error")
	}
	// Subsequent writes work again (failure was transient, and WAL
	// errors surface to the writer without degrading the engine).
	if err := db.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("post-failure put: %v", err)
	}
}

func TestManifestFailureSurfaces(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 2 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), make([]byte, 100))
	}
	// Arm far enough ahead that some structural write (table, manifest)
	// hits it during flush.
	ffs.Arm(faultfs.ClassAny, faultfs.OpWrite, 3)
	flushErr := db.Flush()
	closeErr := db.Close()
	if flushErr == nil && closeErr == nil {
		t.Fatal("some structural write should have failed")
	}
}
