package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"lsmlab/internal/vfs"
)

// faultFS injects a write failure after a countdown of Write calls on
// files whose names match a suffix. Countdown < 0 disables injection.
type faultFS struct {
	vfs.FS
	suffix    string
	countdown atomic.Int64
	errInject error
}

func newFaultFS(base vfs.FS, suffix string) *faultFS {
	f := &faultFS{FS: base, suffix: suffix, errInject: errors.New("injected write failure")}
	f.countdown.Store(-1)
	return f
}

// arm makes the nth matching write (1-based) fail.
func (f *faultFS) arm(n int64) { f.countdown.Store(n) }

func (f *faultFS) Create(name string) (vfs.File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if f.suffix != "" && !vfs.HasSuffix(name, f.suffix) {
		return file, nil
	}
	return &faultFile{File: file, fs: f}, nil
}

type faultFile struct {
	vfs.File
	fs *faultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	for {
		cur := f.fs.countdown.Load()
		if cur < 0 {
			return f.File.Write(p)
		}
		if f.fs.countdown.CompareAndSwap(cur, cur-1) {
			if cur-1 == 0 {
				f.fs.countdown.Store(-1)
				return 0, f.fs.errInject
			}
			return f.File.Write(p)
		}
	}
}

func TestFlushFailureSurfacesAndDataSurvivesInWAL(t *testing.T) {
	base := vfs.NewMem()
	ffs := newFaultFS(base, ".sst")
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Write one buffer's worth, then make the next table write fail.
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.arm(1)
	err = db.Flush()
	if err == nil {
		t.Fatal("flush with failing device must error")
	}
	// The DB reports the background error on close too.
	db.Close()

	// Reopen over the same (now healthy) filesystem: the WAL still holds
	// the data, so nothing is lost.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("key %d lost after failed flush + recovery: %v", i, err)
		}
	}
}

func TestCompactionFailureKeepsOldVersionReadable(t *testing.T) {
	base := vfs.NewMem()
	ffs := newFaultFS(base, ".sst")
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.Workers = 1
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < 300; i++ {
		k, v := fmt.Sprintf("k%03d", i%100), fmt.Sprintf("v%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()

	// Fail the next table write, then force a compaction.
	ffs.arm(2)
	compactErr := db.Compact()
	// Whether or not the error surfaced through Compact (it may land in
	// bgErr), every key must remain readable from the old version.
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s unreadable after failed compaction: %q %v", k, v, err)
		}
	}
	_ = compactErr
	db.Close()

	// After reopen, orphaned partial outputs are swept and data intact.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, want := range model {
		v, err := db2.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s after reopen: %q %v", k, v, err)
		}
	}
	// Orphan sweep: every .sst on disk is referenced by the live version.
	live := db2.Version().LiveFileNums()
	names, _ := base.List("db")
	for _, name := range names {
		if vfs.HasSuffix(name, ".sst") {
			var num uint64
			fmt.Sscanf(name, "%06d.sst", &num)
			if !live[num] {
				t.Errorf("orphan table %s survived recovery", name)
			}
		}
	}
}

func TestWALWriteFailureSurfacesToWriter(t *testing.T) {
	base := vfs.NewMem()
	ffs := newFaultFS(base, ".wal")
	opts := DefaultOptions(ffs, "db")
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("ok"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	ffs.arm(1)
	if err := db.Put([]byte("doomed"), []byte("v")); err == nil {
		t.Fatal("put with failing WAL must error")
	}
	// Subsequent writes work again (failure was transient).
	if err := db.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("post-failure put: %v", err)
	}
}

func TestManifestFailureSurfaces(t *testing.T) {
	base := vfs.NewMem()
	ffs := newFaultFS(base, "") // any file
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 2 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), make([]byte, 100))
	}
	// Arm far enough ahead that some structural write (table, manifest)
	// hits it during flush.
	ffs.arm(3)
	flushErr := db.Flush()
	closeErr := db.Close()
	if flushErr == nil && closeErr == nil {
		t.Fatal("some structural write should have failed")
	}
}
