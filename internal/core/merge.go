package core

import (
	"errors"
	"fmt"

	"lsmlab/internal/kv"
	"lsmlab/internal/wal"
	"lsmlab/internal/wisckey"
)

// MergeOperator folds read-modify-write operands into values (tutorial
// §2.2.6). Implementations must be deterministic and associative in the
// PartialMerge sense.
type MergeOperator interface {
	// FullMerge computes the final value from the existing base value
	// (nil when the key had none) and the operands, oldest first.
	FullMerge(key, existing []byte, operands [][]byte) ([]byte, error)
	// PartialMerge combines two adjacent operands (older applied first)
	// into one, reporting false if they cannot be combined; compaction
	// then keeps them separate.
	PartialMerge(key, older, newer []byte) ([]byte, bool)
}

// ErrNoMergeOperator is returned by Merge when no operator is
// configured.
var ErrNoMergeOperator = errors.New("lsm: no merge operator configured")

// Merge records a read-modify-write operand for key. The operand is
// folded into the key's value by Options.MergeOperator at read or
// compaction time — the write itself never reads (the blind-write
// advantage of the LSM RMW path).
func (db *DB) Merge(key, operand []byte) error {
	if db.opts.MergeOperator == nil {
		return ErrNoMergeOperator
	}
	var b Batch
	b.Merge(key, operand)
	return db.Apply(&b)
}

// Merge adds a merge operand to the batch.
func (b *Batch) Merge(key, operand []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindMerge, Key: cp(key), Value: cp(operand)})
}

// resolveMergeSlow computes the merged value of key at snapshot snap,
// starting from the already-found newest operand. It walks every
// version of the key across all sources, collecting operands until a
// base value (Set), a tombstone, or the end of the key's history.
func (db *DB) resolveMergeSlow(view readView, key []byte, snap kv.SeqNum) ([]byte, error) {
	// Build a merged internal iterator over all sources, like
	// NewIterator but without user-facing settling.
	var sources []kv.Iterator
	var releases []func()
	defer func() {
		for _, rel := range releases {
			rel()
		}
	}()
	var rangeDels []kv.RangeTombstone
	for _, mw := range view.mems {
		sources = append(sources, mw.mt.NewIterator())
		rangeDels = append(rangeDels, mw.rangeTombstones()...)
	}
	for _, level := range view.version.Levels {
		for _, run := range level.Runs {
			f := run.FindFile(key)
			if f == nil {
				continue
			}
			r, release, err := db.tcache.acquire(f.Num)
			if err != nil {
				return nil, err
			}
			releases = append(releases, release)
			sources = append(sources, r.NewIterator())
			rangeDels = append(rangeDels, r.RangeTombstones()...)
		}
	}
	merge := kv.NewMergingIterator(sources...)
	defer merge.Close()

	covered := func(seq kv.SeqNum) bool {
		for _, rt := range rangeDels {
			if rt.Seq <= snap && rt.Seq > seq && rt.Covers(key, seq) {
				return true
			}
		}
		return false
	}

	// Operands are collected newest-first and reversed for FullMerge.
	var newestFirst [][]byte
	var base []byte
	ok := merge.SeekGE(kv.MakeSearchKey(key, snap))
	for ; ok; ok = merge.Next() {
		uk, seq, kind, _ := kv.ParseKey(merge.Key())
		if kv.CompareUser(uk, key) != 0 {
			break
		}
		if !kv.Visible(seq, snap) {
			continue
		}
		if covered(seq) {
			break // everything older is deleted by a range tombstone
		}
		done := false
		switch kind {
		case kv.KindMerge:
			newestFirst = append(newestFirst, cp(merge.Value()))
		case kv.KindSet:
			base = cp(merge.Value())
			done = true
		case kv.KindValuePointer:
			p, err := wisckey.DecodePointer(merge.Value())
			if err != nil {
				return nil, err
			}
			v, err := db.vlog.Read(p)
			if err != nil {
				return nil, err
			}
			base = v
			done = true
		default: // tombstones end the history with no base
			done = true
		}
		if done {
			break
		}
	}
	// A corrupt block ends the walk indistinguishably from a finished
	// history; folding a truncated operand chain would corrupt the value.
	if err := merge.Error(); err != nil {
		return nil, err
	}
	operands := make([][]byte, 0, len(newestFirst))
	for i := len(newestFirst) - 1; i >= 0; i-- {
		operands = append(operands, newestFirst[i])
	}
	v, err := db.opts.MergeOperator.FullMerge(key, base, operands)
	if err != nil {
		return nil, fmt.Errorf("lsm: merge operator: %w", err)
	}
	return v, nil
}
