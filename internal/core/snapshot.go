package core

import "lsmlab/internal/kv"

// Snapshot is a consistent read-only view of the store as of its
// creation. Live snapshots also pin data during compaction: versions a
// snapshot can still observe are never garbage-collected (tutorial
// §2.1.2; compaction retains the newest version per snapshot stripe).
type Snapshot struct {
	db       *DB
	seq      kv.SeqNum
	released bool
}

// NewSnapshot captures the current published sequence number. The
// visibleSeq watermark (not the allocation cursor) is captured, so a
// snapshot taken mid-group observes only fully committed batches.
func (db *DB) NewSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	seq := kv.SeqNum(db.visibleSeq.Load())
	db.snapshots[seq]++
	return &Snapshot{db: db, seq: seq}
}

// Get reads a key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	if s.released {
		return nil, ErrClosed
	}
	return s.db.get(key, s.seq, 0)
}

// NewIterator iterates the store as of the snapshot.
func (s *Snapshot) NewIterator(opts IterOptions) (*Iterator, error) {
	if s.released {
		return nil, ErrClosed
	}
	opts.snapshot = s.seq
	return s.db.NewIterator(opts)
}

// Scan returns up to limit live entries in [start, end) as of the
// snapshot.
func (s *Snapshot) Scan(start, end []byte, limit int) ([]KV, error) {
	it, err := s.NewIterator(IterOptions{LowerBound: start, UpperBound: end})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []KV
	for ok := it.First(); ok; ok = it.Next() {
		out = append(out, KV{Key: cp(it.Key()), Value: cp(it.Value())})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, it.Err()
}

// Seq exposes the snapshot's sequence number (used by experiments).
func (s *Snapshot) Seq() kv.SeqNum { return s.seq }

// Release unpins the snapshot; the data it protected becomes eligible
// for garbage collection at the next compaction.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if n := s.db.snapshots[s.seq]; n <= 1 {
		delete(s.db.snapshots, s.seq)
	} else {
		s.db.snapshots[s.seq] = n - 1
	}
}
