//go:build race

package core

// raceEnabled reports whether the race detector is active; its shadow
// memory bookkeeping allocates, so exact allocs/op assertions skip.
const raceEnabled = true
