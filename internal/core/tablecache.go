package core

import (
	"fmt"
	"sync"

	"lsmlab/internal/manifest"
	"lsmlab/internal/sstable"
	"lsmlab/internal/vfs"
)

// tableCache keeps open sstable readers, refcounted so that a file can
// be doomed (deleted by a compaction) while in-flight reads and open
// iterators still hold it. The physical file is removed when the last
// reference is released.
type tableCache struct {
	fs    vfs.FS
	dir   string
	ropts func(fileNum uint64) sstable.ReaderOptions

	mu      sync.Mutex
	entries map[uint64]*tcEntry
}

type tcEntry struct {
	r      *sstable.Reader
	refs   int
	doomed bool
	// keepFile suppresses the physical delete of a doomed entry: the
	// scrubber quarantines corrupt tables by renaming them aside, so the
	// cache must drop its reader without removing the evidence.
	keepFile bool
}

func newTableCache(fs vfs.FS, dir string, ropts func(uint64) sstable.ReaderOptions) *tableCache {
	return &tableCache{fs: fs, dir: dir, ropts: ropts, entries: make(map[uint64]*tcEntry)}
}

// acquire opens (or reuses) the reader for fileNum and takes a
// reference. Callers must invoke the returned release exactly once.
func (tc *tableCache) acquire(fileNum uint64) (*sstable.Reader, func(), error) {
	r, err := tc.acquireRef(fileNum)
	if err != nil {
		return nil, nil, err
	}
	return r, func() { tc.release(fileNum) }, nil
}

// acquireRef is acquire without the release closure: callers pair it
// with an explicit tc.release(fileNum). The point-read path probes a
// table per level and the closure allocation is measurable there.
func (tc *tableCache) acquireRef(fileNum uint64) (*sstable.Reader, error) {
	tc.mu.Lock()
	e, ok := tc.entries[fileNum]
	if ok && !e.doomed {
		e.refs++
		r := e.r
		tc.mu.Unlock()
		return r, nil
	}
	tc.mu.Unlock()
	if ok { // doomed
		return nil, fmt.Errorf("table %d: %w", fileNum, vfs.ErrNotExist)
	}

	// Open outside the lock; racing opens are reconciled below.
	f, err := tc.fs.Open(vfs.Join(tc.dir, manifest.FileName(fileNum)))
	if err != nil {
		return nil, err
	}
	r, err := sstable.Open(f, tc.ropts(fileNum))
	if err != nil {
		f.Close()
		return nil, err
	}

	tc.mu.Lock()
	if cur, ok := tc.entries[fileNum]; ok && !cur.doomed {
		cur.refs++
		tc.mu.Unlock()
		r.Close()
		return cur.r, nil
	}
	tc.entries[fileNum] = &tcEntry{r: r, refs: 1}
	tc.mu.Unlock()
	return r, nil
}

func (tc *tableCache) release(fileNum uint64) {
	tc.mu.Lock()
	e, ok := tc.entries[fileNum]
	if !ok {
		tc.mu.Unlock()
		return
	}
	e.refs--
	del := e.doomed && e.refs == 0
	if del {
		delete(tc.entries, fileNum)
	}
	tc.mu.Unlock()
	if del {
		e.r.Close()
		if !e.keepFile {
			tc.fs.Remove(vfs.Join(tc.dir, manifest.FileName(fileNum)))
		}
	}
}

// evict dooms a file: it is closed and physically deleted as soon as
// the last reference drops (immediately, if unreferenced).
func (tc *tableCache) evict(fileNum uint64) {
	tc.mu.Lock()
	e, ok := tc.entries[fileNum]
	if !ok {
		// Never opened: delete directly.
		tc.entries[fileNum] = &tcEntry{doomed: true, refs: 0}
		e = tc.entries[fileNum]
	}
	e.doomed = true
	del := e.refs == 0
	if del {
		delete(tc.entries, fileNum)
	}
	tc.mu.Unlock()
	if del {
		if e.r != nil {
			e.r.Close()
		}
		tc.fs.Remove(vfs.Join(tc.dir, manifest.FileName(fileNum)))
	}
}

// forget dooms a file like evict but never deletes it physically: the
// cached reader closes as soon as the last reference drops, while the
// file itself stays on disk for the quarantine rename.
func (tc *tableCache) forget(fileNum uint64) {
	tc.mu.Lock()
	e, ok := tc.entries[fileNum]
	if !ok {
		tc.mu.Unlock()
		return
	}
	e.doomed = true
	e.keepFile = true
	del := e.refs == 0
	if del {
		delete(tc.entries, fileNum)
	}
	tc.mu.Unlock()
	if del && e.r != nil {
		e.r.Close()
	}
}

// close releases every open reader (used at DB close, when no readers
// remain).
func (tc *tableCache) close() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for num, e := range tc.entries {
		if e.r != nil {
			e.r.Close()
		}
		delete(tc.entries, num)
	}
}
