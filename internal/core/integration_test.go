package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lsmlab/internal/compaction"
	"lsmlab/internal/vfs"
)

// TestLifecycleMatrix drives a full lifecycle — load, update, delete,
// manual compaction, reopen — across every layout with and without
// key-value separation, checking the model at each phase.
func TestLifecycleMatrix(t *testing.T) {
	for name, layout := range layoutsUnderTest() {
		for _, wisc := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/wisckey=%v", name, wisc), func(t *testing.T) {
				fs := vfs.NewMem()
				opts := DefaultOptions(fs, "db")
				opts.BufferBytes = 8 << 10
				opts.TargetFileSize = 16 << 10
				opts.BaseLevelBytes = 32 << 10
				opts.NumLevels = 4
				opts.SizeRatio = 4
				opts.Layout = layout
				opts.Paranoid = true
				if wisc {
					opts.ValueSeparationThreshold = 100
				}
				db, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}

				model := map[string]string{}
				r := rand.New(rand.NewSource(31))
				bigVal := func(i int) string {
					return fmt.Sprintf("big-%04d-%s", i, string(make([]byte, 200)))
				}

				// Phase 1: load with mixed value sizes.
				for i := 0; i < 1500; i++ {
					k := fmt.Sprintf("key-%04d", i)
					v := fmt.Sprintf("v%d", i)
					if i%3 == 0 {
						v = bigVal(i)
					}
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				}
				// Phase 2: updates and deletes.
				for i := 0; i < 800; i++ {
					k := fmt.Sprintf("key-%04d", r.Intn(1500))
					if r.Intn(3) == 0 {
						db.Delete([]byte(k))
						delete(model, k)
					} else {
						v := fmt.Sprintf("u%d", i)
						db.Put([]byte(k), []byte(v))
						model[k] = v
					}
				}
				// Phase 3: a range delete.
				db.DeleteRange([]byte("key-0400"), []byte("key-0500"))
				for i := 400; i < 500; i++ {
					delete(model, fmt.Sprintf("key-%04d", i))
				}

				check := func(phase string) {
					t.Helper()
					for k, want := range model {
						v, err := db.Get([]byte(k))
						if err != nil || string(v) != want {
							t.Fatalf("%s: get %s = %q/%v want %q", phase, k, v, err, want)
						}
					}
					got, err := db.Scan(nil, nil, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(model) {
						t.Fatalf("%s: scan %d keys, model %d", phase, len(got), len(model))
					}
				}
				check("pre-compact")

				if err := db.Compact(); err != nil {
					t.Fatal(err)
				}
				check("post-compact")

				if err := db.Close(); err != nil {
					t.Fatal(err)
				}
				db, err = Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				check("post-reopen")
			})
		}
	}
}

// TestSnapshotSurvivesRangeDeleteCompaction pins data with a snapshot,
// range-deletes it, compacts fully, and verifies the snapshot still
// reads the old values (the compaction must retain snapshot-protected
// versions under range tombstones).
func TestSnapshotSurvivesRangeDeleteCompaction(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	db.Flush()
	snap := db.NewSnapshot()
	defer snap.Release()
	db.DeleteRange([]byte("k050"), []byte("k150"))
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Live reads: deleted.
	if _, err := db.Get([]byte("k100")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live read of range-deleted key: %v", err)
	}
	// Snapshot reads: all 200 keys alive.
	for i := 0; i < 200; i += 10 {
		k := fmt.Sprintf("k%03d", i)
		v, err := snap.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("snapshot read %s: %q %v", k, v, err)
		}
	}
	kvs, err := snap.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 200 {
		t.Fatalf("snapshot scan %d keys, want 200", len(kvs))
	}
	// After release, another compaction purges for real.
	snap.Release()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	kvs, _ = db.Scan(nil, nil, 0)
	if len(kvs) != 100 {
		t.Fatalf("post-release scan %d keys, want 100", len(kvs))
	}
}

// TestL0StallTrigger verifies the level-0 run-count stall: with
// compactions effectively disabled, enough flushes must stall writers.
func TestL0StallTrigger(t *testing.T) {
	gate := &gatedFS{FS: vfs.NewMem(), gate: make(chan struct{})}
	close(gate.gate) // flushes run freely; compactions are the issue
	opts := DefaultOptions(vfs.NewMem(), "db")
	opts.BufferBytes = 2 << 10
	opts.StallL0Runs = 3
	opts.Layout = compaction.TieredFirst{K0: 3} // compaction at 3 runs too
	opts.Workers = 1
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 512)
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()
	// With the stall threshold equal to the compaction trigger, writers
	// must have paused at least once while L0 drained.
	ts := db.TreeStats()
	if ts.Levels[0].Runs >= 3+1 {
		t.Errorf("L0 exceeded stall threshold: %d runs", ts.Levels[0].Runs)
	}
}

// TestValueLogGCUpdatesPointers checks that after GC moves live values,
// reads go to the new location and the old segment is gone.
func TestValueLogGCUpdatesPointers(t *testing.T) {
	db, _ := testDB(t, func(o *Options) { o.ValueSeparationThreshold = 64 })
	db.vlog.SetMaxFileSize(2 << 10)
	val := make([]byte, 256)
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("live-%02d", i)), val)
	}
	// Overwrite half: their old records become garbage.
	for i := 0; i < 5; i++ {
		db.Put([]byte(fmt.Sprintf("live-%02d", i)), val)
	}
	for gc := 0; gc < 10; gc++ {
		if _, collected, err := db.GCValueLog(); err != nil {
			t.Fatal(err)
		} else if !collected {
			break
		}
	}
	for i := 0; i < 10; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("live-%02d", i)))
		if err != nil || len(v) != 256 {
			t.Fatalf("key %d after GC: len=%d err=%v", i, len(v), err)
		}
	}
}

// TestIteratorSnapshotConsistencyDuringWrites verifies an iterator
// created from a snapshot ignores concurrent writes entirely.
func TestIteratorSnapshotConsistencyDuringWrites(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old"))
	}
	snap := db.NewSnapshot()
	defer snap.Release()
	it, err := snap.NewIterator(IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Interleave iteration with writes.
	count := 0
	ok := it.First()
	for ok {
		if string(it.Value()) != "old" {
			t.Fatalf("iterator saw new write at %s", it.Key())
		}
		count++
		if count%10 == 0 {
			db.Put([]byte(fmt.Sprintf("k%03d", count)), []byte("new"))
			db.Put([]byte(fmt.Sprintf("zz%03d", count)), []byte("new")) // beyond old range
		}
		ok = it.Next()
	}
	if count != 100 {
		t.Fatalf("iterated %d, want 100", count)
	}
}

// TestCompactEmptyAndTinyStores exercises edge paths.
func TestCompactEmptyAndTinyStores(t *testing.T) {
	db, _ := testDB(t, nil)
	if err := db.Compact(); err != nil {
		t.Fatalf("compact empty: %v", err)
	}
	db.Put([]byte("only"), []byte("v"))
	if err := db.Compact(); err != nil {
		t.Fatalf("compact tiny: %v", err)
	}
	if v, err := db.Get([]byte("only")); err != nil || string(v) != "v" {
		t.Fatalf("after compact: %q %v", v, err)
	}
	// Everything should sit in the last level now.
	ts := db.TreeStats()
	if ts.Levels[len(ts.Levels)-1].Files != 1 {
		t.Errorf("tiny store not in bottom level: %+v", ts.Levels)
	}
}

// TestSeqNumsNeverReused: after deletes and compactions, new writes get
// strictly larger sequence numbers (monotonic across the run).
func TestSeqNumsNeverReused(t *testing.T) {
	db, _ := testDB(t, nil)
	var last uint64
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i%50)), []byte("v"))
		if cur := db.lastSeq.Load(); cur <= last {
			t.Fatalf("seq went backwards: %d after %d", cur, last)
		} else {
			last = cur
		}
		if i%100 == 0 {
			db.Flush()
		}
	}
}

// TestReadYourOwnWritesUnderCompaction hammers gets against keys being
// compacted concurrently; every read must return the newest write.
func TestReadYourOwnWritesUnderCompaction(t *testing.T) {
	db, _ := testDB(t, func(o *Options) { o.Workers = 2 })
	const keys = 50
	latest := make([]int, keys)
	for round := 0; round < 40; round++ {
		for k := 0; k < keys; k++ {
			latest[k] = round
			if err := db.Put([]byte(fmt.Sprintf("k%02d", k)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
		// Immediately verify a sample while background work churns.
		for k := 0; k < keys; k += 7 {
			v, err := db.Get([]byte(fmt.Sprintf("k%02d", k)))
			if err != nil {
				t.Fatal(err)
			}
			if string(v) != fmt.Sprintf("r%d", latest[k]) {
				t.Fatalf("round %d key %d: got %s", round, k, v)
			}
		}
	}
}

// TestDiskUsageTracksData ensures the disk accounting moves with the
// data: growing on load, shrinking after deletes + full compaction.
func TestDiskUsageTracksData(t *testing.T) {
	db, _ := testDB(t, nil)
	val := make([]byte, 500)
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), val)
	}
	db.Flush()
	loaded := db.DiskUsageBytes()
	if loaded < 500*500/2 {
		t.Fatalf("disk usage %d suspiciously small", loaded)
	}
	for i := 0; i < 500; i++ {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := db.DiskUsageBytes(); after >= loaded/4 {
		t.Errorf("after deleting everything, usage %d (was %d)", after, loaded)
	}
}

// TestFilterMemoryReported sanity-checks FilterMemoryBytes.
func TestFilterMemoryReported(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	db.Flush()
	db.WaitIdle()
	if db.FilterMemoryBytes() <= 0 {
		t.Error("filters should occupy memory")
	}
	db2, _ := testDB(t, func(o *Options) { o.FilterMode = FilterNone })
	for i := 0; i < 500; i++ {
		db2.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	db2.Flush()
	db2.WaitIdle()
	if db2.FilterMemoryBytes() != 0 {
		t.Error("FilterNone must report zero filter memory")
	}
}
