package core

import (
	"fmt"
	"strings"

	"lsmlab/internal/metrics"
)

// LevelStats summarizes one level for monitoring and experiments.
type LevelStats struct {
	Level    int
	Runs     int
	Files    int
	Bytes    uint64
	Capacity uint64 // byte capacity (0 for level 0, which is run-count bound)
}

// TreeStats describes the current shape of the LSM-tree.
type TreeStats struct {
	Levels      []LevelStats
	TotalBytes  uint64
	TotalFiles  int
	TotalRuns   int
	MemtableLen int
	Immutables  int
	LiveSeq     uint64
	// MemtableBytes is the mutable buffer's footprint plus any immutable
	// buffers awaiting flush — the write-side memory pressure gauge.
	MemtableBytes uint64
	// BacklogBytes estimates the pending compaction debt: bytes by which
	// levels exceed their capacities. A persistently non-zero backlog
	// means compaction is not keeping up with ingest (a hot shard, in
	// the partitioned store).
	BacklogBytes uint64
	// L0Runs is Levels[0].Runs, hoisted out so monitoring surfaces need
	// not walk the level slice for the stall-relevant figure.
	L0Runs int
}

// TreeStats returns the current structure summary.
func (db *DB) TreeStats() TreeStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	ts := TreeStats{
		MemtableLen:   db.mem.mt.Len(),
		Immutables:    len(db.imm),
		LiveSeq:       db.visibleSeq.Load(),
		MemtableBytes: uint64(db.mem.mt.ApproximateBytes()),
	}
	for _, mw := range db.imm {
		ts.MemtableBytes += uint64(mw.mt.ApproximateBytes())
	}
	for i, l := range db.version.Levels {
		ls := LevelStats{Level: i, Runs: len(l.Runs), Files: l.NumFiles(), Bytes: l.Size()}
		if i >= 1 {
			popts := db.picker.Options()
			ls.Capacity = popts.LevelCapacityBytes(i)
			if ls.Bytes > ls.Capacity {
				ts.BacklogBytes += ls.Bytes - ls.Capacity
			}
		} else {
			ts.L0Runs = ls.Runs
		}
		ts.Levels = append(ts.Levels, ls)
		ts.TotalBytes += ls.Bytes
		ts.TotalFiles += ls.Files
		ts.TotalRuns += ls.Runs
	}
	return ts
}

// String renders the tree shape like the lsmctl "shape" command.
func (ts TreeStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memtable: %d entries (+%d immutable)\n", ts.MemtableLen, ts.Immutables)
	for _, l := range ts.Levels {
		bar := strings.Repeat("#", l.Runs)
		fmt.Fprintf(&b, "L%d: %2d runs %3d files %10d bytes %s\n", l.Level, l.Runs, l.Files, l.Bytes, bar)
	}
	fmt.Fprintf(&b, "total: %d runs, %d files, %d bytes", ts.TotalRuns, ts.TotalFiles, ts.TotalBytes)
	return b.String()
}

// FormatStats renders the engine counters, derived amplification
// figures, and — verbosely — the per-operation latency percentiles, for
// lsmctl stats and logs.
func (db *DB) FormatStats(verbose bool) string {
	s := db.m.Snapshot()
	var b strings.Builder
	b.WriteString(s.String())
	fmt.Fprintf(&b, "\nspace_amp=%.2f disk=%d bytes cache_hit=%.2f throttle_ms=%d",
		db.SpaceAmplification(), db.DiskUsageBytes(), s.CacheHitRate(), s.ThrottleNs/1e6)
	fmt.Fprintf(&b, "\nblock_reads=%d (cached %d) commit_groups=%d avg_group=%.2f wal_syncs=%d syncs_saved=%d",
		s.BlockReads, s.BlockReadsCached, s.CommitGroups, s.AvgCommitGroupSize(),
		s.WALSyncs, s.WALSyncsSaved)
	// Health is always one line: operators grep for "degraded=" and a
	// background error is visible the moment it happens, not at Close.
	// Injected errors carry op+path (faultfs.OpError, os.PathError), so
	// the failing operation and file name surface here.
	h := db.Health()
	switch {
	case h.Degraded:
		fmt.Fprintf(&b, "\ndegraded=true op=%s kind=%s cause=%q", h.Op, h.Kind, h.Cause)
	case h.BgErr != "":
		fmt.Fprintf(&b, "\ndegraded=false bg_err_op=%s bg_err=%q", h.BgErrOp, h.BgErr)
	default:
		fmt.Fprintf(&b, "\ndegraded=false")
	}
	if s.ScrubbedTables > 0 || s.ScrubCorruptions > 0 {
		fmt.Fprintf(&b, " scrubbed=%d scrub_corruptions=%d", s.ScrubbedTables, s.ScrubCorruptions)
	}
	wp := db.WorkloadProfile()
	if wp.Enabled {
		// The measured workload character and RUM point over the decay
		// window — the live versions of the figures the paper's tuning
		// models take as givens.
		fmt.Fprintf(&b, "\nworkload: gets=%d puts=%d deletes=%d scans=%d mean_scan_len=%.1f distinct~%d zipf_s=%.2f top_share=%.2f",
			wp.Gets, wp.Puts, wp.Deletes, wp.Scans, wp.MeanScanLen, wp.DistinctKeys, wp.ZipfS, wp.TopShare)
		fmt.Fprintf(&b, "\nrum(window): read_amp=%.2f write_amp=%.2f space_amp=%.2f",
			wp.ReadAmp, wp.WriteAmp, wp.SpaceAmp)
	}
	if verbose && wp.Enabled {
		for _, lp := range wp.Levels {
			fmt.Fprintf(&b, "\n  L%d: runs=%d probes/get=%.2f block_reads=%d (cached %d) bytes_read=%d bytes_written=%d compact_in=%d",
				lp.Level, lp.LiveRuns, lp.ReadAmp, lp.BlockReads, lp.BlockReadsCached,
				lp.BytesRead, lp.BytesWritten, lp.CompactionBytesIn)
			for _, r := range reasonNames {
				if v := lp.WriteByReason[r]; v > 0 {
					fmt.Fprintf(&b, " %s=%d", r, v)
				}
			}
		}
		for _, tw := range wp.Tenants {
			fmt.Fprintf(&b, "\n  tenant %s: ops~%d gets=%d puts=%d deletes=%d scans=%d",
				tw.Tenant, tw.Ops, tw.Gets, tw.Puts, tw.Deletes, tw.Scans)
		}
		if len(wp.TopKeys) > 0 {
			fmt.Fprintf(&b, "\n  top keys:")
			for i, hk := range wp.TopKeys {
				if i == 5 {
					break
				}
				fmt.Fprintf(&b, " %q~%d", hk.Key, hk.Count)
			}
		}
	}
	if verbose {
		lat := db.m.Latencies()
		fmt.Fprintf(&b, "\nlatency (this process):")
		fmt.Fprintf(&b, "\n  get        %s", lat.Get)
		fmt.Fprintf(&b, "\n  put        %s", lat.Put)
		fmt.Fprintf(&b, "\n  scan-next  %s", lat.ScanNext)
		fmt.Fprintf(&b, "\n  flush      %s", lat.Flush)
		fmt.Fprintf(&b, "\n  compaction %s", lat.Compaction)
		gs := db.m.GroupSizes()
		if gs.N > 0 {
			fmt.Fprintf(&b, "\ncommit group size: n=%d mean=%.2f max=%d",
				gs.N, gs.Mean(), gs.Max)
		}
		// The tree shape rides along verbosely so remote consumers
		// (lsmctl top over the STATS verb) see per-level runs/bytes
		// without a second round trip.
		fmt.Fprintf(&b, "\n%s", db.TreeStats())
	}
	return b.String()
}

// CommitGroupSizes returns the histogram of batches per commit group
// (values are counts, not durations).
func (db *DB) CommitGroupSizes() metrics.HistogramSnapshot { return db.m.GroupSizes() }

// FilterMemoryBytes sums the pinned Bloom-filter bytes across every
// live table — the memory side of the filter experiments.
func (db *DB) FilterMemoryBytes() int64 {
	v := db.Version()
	var total int64
	for _, l := range v.Levels {
		for _, r := range l.Runs {
			for _, f := range r.Files {
				rd, release, err := db.tcache.acquire(f.Num)
				if err != nil {
					continue
				}
				total += int64(rd.FilterSizeBytes())
				release()
			}
		}
	}
	return total
}

// SpaceAmplification estimates space amplification: bytes on disk
// divided by the bytes of unique live entries (approximated by the last
// level's size plus live memtable data, per Dong et al.'s definition).
// It returns 1 when the tree is empty.
func (db *DB) SpaceAmplification() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := float64(db.version.TotalSize())
	if total == 0 {
		return 1
	}
	// Unique data is approximated by the deepest non-empty level.
	var deepest float64
	for i := len(db.version.Levels) - 1; i >= 0; i-- {
		if sz := db.version.Levels[i].Size(); sz > 0 {
			deepest = float64(sz)
			break
		}
	}
	if deepest == 0 {
		return 1
	}
	return total / deepest
}
