package core

import (
	"errors"
	"fmt"
	"io"

	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
	"lsmlab/internal/vfs"
)

// Checkpoint writes a consistent, openable copy of the store into dir
// (which must not already contain a store). Immutable files make this
// nearly free of coordination (tutorial §2.1.1 C; immutability [51]):
// the current version is pinned, its table files are copied byte for
// byte, a manifest holding exactly that version is written, and the
// WAL-resident tail is flushed first so the checkpoint needs no log.
//
// The checkpoint is taken online: concurrent writes and compactions
// proceed; table-cache reference counting keeps the pinned files alive
// until they are copied even if a compaction deletes them meanwhile.
func (db *DB) Checkpoint(dir string) (err error) {
	if dir == db.dir {
		return errors.New("lsm: checkpoint directory must differ from the store directory")
	}
	jobID := db.nextJobID()
	start := db.opts.NowNs()
	defer func() {
		db.emit(events.Event{Type: events.CheckpointEnd, JobID: jobID,
			Path: dir, DurationNs: db.opts.NowNs() - start, Err: err})
	}()
	// Flush so the memtable contents are in table files (the checkpoint
	// carries no WAL).
	if err := db.Flush(); err != nil {
		return err
	}

	// Pin the version and take references on every file before copying.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	v := db.version
	seq := db.lastSeq.Load()
	var nums []uint64
	for _, l := range v.Levels {
		for _, r := range l.Runs {
			for _, f := range r.Files {
				nums = append(nums, f.Num)
			}
		}
	}
	db.mu.Unlock()

	var releases []func()
	defer func() {
		for _, rel := range releases {
			rel()
		}
	}()
	for _, num := range nums {
		_, release, err := db.tcache.acquire(num)
		if err != nil {
			return fmt.Errorf("lsm: checkpoint pin %d: %w", num, err)
		}
		releases = append(releases, release)
	}

	if err := db.fs.MkdirAll(dir); err != nil {
		return err
	}
	if db.fs.Exists(vfs.Join(dir, "MANIFEST")) {
		return fmt.Errorf("lsm: checkpoint target %s already holds a store", dir)
	}
	for _, num := range nums {
		name := manifest.FileName(num)
		if err := copyFile(db.fs, vfs.Join(db.dir, name), vfs.Join(dir, name)); err != nil {
			return err
		}
	}
	// Value-log segments, when separation is on.
	if db.vlog != nil {
		names, err := db.fs.List(db.dir)
		if err != nil {
			return err
		}
		for _, name := range names {
			if vfs.HasSuffix(name, ".vlog") {
				if err := copyFile(db.fs, vfs.Join(db.dir, name), vfs.Join(dir, name)); err != nil {
					return err
				}
			}
		}
	}

	store, _, err := manifest.OpenStore(db.fs, vfs.Join(dir, "MANIFEST"))
	if err != nil {
		return err
	}
	maxNum := uint64(0)
	for _, n := range nums {
		if n > maxNum {
			maxNum = n
		}
	}
	st := &manifest.State{Version: v, NextFileNum: maxNum + 1, LastSeq: kv.SeqNum(seq)}
	if err := store.Commit(st); err != nil {
		store.Close()
		return err
	}
	return store.Close()
}

func copyFile(fs vfs.FS, src, dst string) error {
	in, err := fs.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	size, err := in.Size()
	if err != nil {
		return err
	}
	out, err := fs.Create(dst)
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<20)
	var off int64
	for off < size {
		n, err := in.ReadAt(buf, off)
		if n > 0 {
			if _, werr := out.Write(buf[:n]); werr != nil {
				out.Close()
				return werr
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			out.Close()
			return err
		}
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
