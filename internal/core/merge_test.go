package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"lsmlab/internal/vfs"
	"testing"
)

// counterMerge is an associative int64-add operator.
type counterMerge struct{}

func (counterMerge) FullMerge(key, existing []byte, operands [][]byte) ([]byte, error) {
	var sum int64
	if len(existing) == 8 {
		sum = int64(binary.LittleEndian.Uint64(existing))
	} else if len(existing) != 0 {
		return nil, errors.New("bad existing value")
	}
	for _, op := range operands {
		if len(op) != 8 {
			return nil, errors.New("bad operand")
		}
		sum += int64(binary.LittleEndian.Uint64(op))
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(sum))
	return out, nil
}

func (counterMerge) PartialMerge(key, older, newer []byte) ([]byte, bool) {
	if len(older) != 8 || len(newer) != 8 {
		return nil, false
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out,
		binary.LittleEndian.Uint64(older)+binary.LittleEndian.Uint64(newer))
	return out, true
}

func delta(n int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(n))
	return b
}

func counterValue(t *testing.T, db *DB, key string) int64 {
	t.Helper()
	v, err := db.Get([]byte(key))
	if err != nil {
		t.Fatalf("get %s: %v", key, err)
	}
	if len(v) != 8 {
		t.Fatalf("counter value %d bytes", len(v))
	}
	return int64(binary.LittleEndian.Uint64(v))
}

func mergeDB(t *testing.T, mutate func(*Options)) *DB {
	t.Helper()
	db, _ := testDB(t, func(o *Options) {
		o.MergeOperator = counterMerge{}
		if mutate != nil {
			mutate(o)
		}
	})
	return db
}

func TestMergeRequiresOperator(t *testing.T) {
	db, _ := testDB(t, nil)
	if err := db.Merge([]byte("k"), delta(1)); !errors.Is(err, ErrNoMergeOperator) {
		t.Fatalf("merge without operator: %v", err)
	}
}

func TestMergeInMemtable(t *testing.T) {
	db := mergeDB(t, nil)
	db.Merge([]byte("c"), delta(5))
	db.Merge([]byte("c"), delta(7))
	if got := counterValue(t, db, "c"); got != 12 {
		t.Fatalf("counter = %d", got)
	}
	// Merge over an existing base.
	db.Put([]byte("b"), delta(100))
	db.Merge([]byte("b"), delta(-30))
	if got := counterValue(t, db, "b"); got != 70 {
		t.Fatalf("base+merge = %d", got)
	}
}

func TestMergeAcrossFlush(t *testing.T) {
	db := mergeDB(t, nil)
	db.Put([]byte("c"), delta(10))
	db.Flush()
	db.Merge([]byte("c"), delta(1))
	db.Flush()
	db.Merge([]byte("c"), delta(2))
	if got := counterValue(t, db, "c"); got != 13 {
		t.Fatalf("counter = %d", got)
	}
}

func TestMergeFoldedByCompaction(t *testing.T) {
	db := mergeDB(t, nil)
	for i := 0; i < 100; i++ {
		db.Merge([]byte("c"), delta(1))
		if i%10 == 0 {
			db.Flush()
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// After a full compaction the chain must be folded to one Set.
	e, err := db.getEntry([]byte("c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind().String() != "SET" {
		t.Fatalf("post-compaction kind %v", e.Kind())
	}
	if got := counterValue(t, db, "c"); got != 100 {
		t.Fatalf("counter = %d", got)
	}
}

func TestMergeOverDelete(t *testing.T) {
	db := mergeDB(t, nil)
	db.Put([]byte("c"), delta(50))
	db.Delete([]byte("c"))
	db.Merge([]byte("c"), delta(3))
	if got := counterValue(t, db, "c"); got != 3 {
		t.Fatalf("merge over delete = %d", got)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, db, "c"); got != 3 {
		t.Fatalf("after compaction = %d", got)
	}
}

func TestMergeRespectsSnapshots(t *testing.T) {
	db := mergeDB(t, nil)
	db.Merge([]byte("c"), delta(1))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Merge([]byte("c"), delta(10))
	if got := counterValue(t, db, "c"); got != 11 {
		t.Fatalf("live = %d", got)
	}
	v, err := snap.Get([]byte("c"))
	if err != nil || int64(binary.LittleEndian.Uint64(v)) != 1 {
		t.Fatalf("snapshot = %v %v", v, err)
	}
	// Compaction must preserve the snapshot's view.
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	v, err = snap.Get([]byte("c"))
	if err != nil || int64(binary.LittleEndian.Uint64(v)) != 1 {
		t.Fatalf("snapshot after compaction = %v %v", v, err)
	}
	if got := counterValue(t, db, "c"); got != 11 {
		t.Fatalf("live after compaction = %d", got)
	}
}

func TestMergeVisibleInScans(t *testing.T) {
	db := mergeDB(t, nil)
	db.Put([]byte("a"), delta(1))
	db.Merge([]byte("b"), delta(2))
	db.Merge([]byte("b"), delta(3))
	db.Put([]byte("c"), delta(4))
	db.Flush()
	db.Merge([]byte("c"), delta(1))

	kvs, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 {
		t.Fatalf("scan %d keys", len(kvs))
	}
	want := map[string]int64{"a": 1, "b": 5, "c": 5}
	for _, kvp := range kvs {
		if got := int64(binary.LittleEndian.Uint64(kvp.Value)); got != want[string(kvp.Key)] {
			t.Errorf("scan %s = %d, want %d", kvp.Key, got, want[string(kvp.Key)])
		}
	}
}

func TestMergeIteratorMidStream(t *testing.T) {
	// Keys around the merged key iterate correctly after resolution.
	db := mergeDB(t, nil)
	db.Put([]byte("a"), delta(1))
	db.Merge([]byte("m"), delta(2)) // no base: resolves against nil
	db.Put([]byte("z"), delta(3))
	it, err := db.NewIterator(IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var keys []string
	for ok := it.First(); ok; ok = it.Next() {
		keys = append(keys, string(it.Key()))
	}
	if fmt.Sprint(keys) != fmt.Sprint([]string{"a", "m", "z"}) {
		t.Fatalf("keys %v", keys)
	}
}

func TestMergeManyKeysRandomized(t *testing.T) {
	db := mergeDB(t, nil)
	model := map[string]int64{}
	present := map[string]bool{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("cnt-%02d", i%40)
		switch i % 17 {
		case 3:
			db.Put([]byte(k), delta(int64(i)))
			model[k] = int64(i)
			present[k] = true
		case 7:
			db.Delete([]byte(k))
			model[k] = 0 // a later merge restarts from nil
			present[k] = false
		default:
			db.Merge([]byte(k), delta(1))
			model[k]++
			present[k] = true
		}
	}
	db.Flush()
	db.WaitIdle()
	check := func(phase string) {
		t.Helper()
		for k, want := range model {
			if !present[k] {
				if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
					t.Fatalf("%s: deleted %s: %v", phase, k, err)
				}
				continue
			}
			if got := counterValue(t, db, k); got != want {
				t.Fatalf("%s: %s = %d, want %d", phase, k, got, want)
			}
		}
	}
	check("pre-compaction")
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	check("post-compaction")
}

func TestMergeRecovery(t *testing.T) {
	fs := mergeDBOpts(t)
	db, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("c"), delta(5))
	db.Merge([]byte("c"), delta(2))
	// Crash (no close); reopen and resolve from WAL-replayed state.
	db2, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := counterValue(t, db2, "c"); got != 7 {
		t.Fatalf("recovered counter = %d", got)
	}
}

// mergeDBOpts builds reusable options over a shared MemFS for recovery
// tests.
func mergeDBOpts(t *testing.T) Options {
	t.Helper()
	opts := DefaultOptions(vfs.NewMem(), "db")
	opts.MergeOperator = counterMerge{}
	return opts
}
