package core

import (
	"fmt"
	"sort"
	"testing"

	"lsmlab/internal/kv"
)

// runCI feeds entries through a compactionIter and returns the
// surviving entries as "key@seq#KIND" strings.
func runCI(t *testing.T, entries []kv.Entry, rangeDels []kv.RangeTombstone,
	snapshots []kv.SeqNum, bottom bool) []string {
	t.Helper()
	sort.Slice(entries, func(i, j int) bool { return kv.Compare(entries[i].Key, entries[j].Key) < 0 })
	db := &DB{} // metrics sink only
	merge := kv.NewMergingIterator(kv.NewSliceIterator(entries))
	ci := newCompactionIter(merge, rangeDels, snapshots, bottom, db)
	var out []string
	for ok := ci.first(); ok; ok = ci.next() {
		uk, seq, kind, _ := kv.ParseKey(ci.key)
		out = append(out, fmt.Sprintf("%s@%d#%s", uk, seq, kind))
	}
	return out
}

func e(key string, seq kv.SeqNum, kind kv.Kind, val string) kv.Entry {
	return kv.Entry{Key: kv.MakeKey([]byte(key), seq, kind), Value: []byte(val)}
}

func eq(t *testing.T, got []string, want ...string) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

func TestCIKeepsOnlyNewestWithoutSnapshots(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 3, kv.KindSet, "v3"),
		e("a", 2, kv.KindSet, "v2"),
		e("a", 1, kv.KindSet, "v1"),
		e("b", 5, kv.KindSet, "v5"),
	}, nil, nil, false)
	eq(t, got, "a@3#SET", "b@5#SET")
}

func TestCISnapshotStripesPreserveVersions(t *testing.T) {
	// Snapshot at 2 protects the newest version with seq <= 2.
	got := runCI(t, []kv.Entry{
		e("a", 3, kv.KindSet, "v3"),
		e("a", 2, kv.KindSet, "v2"),
		e("a", 1, kv.KindSet, "v1"),
	}, nil, []kv.SeqNum{2}, false)
	eq(t, got, "a@3#SET", "a@2#SET")
}

func TestCIMultipleSnapshots(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 5, kv.KindSet, ""),
		e("a", 4, kv.KindSet, ""),
		e("a", 3, kv.KindSet, ""),
		e("a", 2, kv.KindSet, ""),
		e("a", 1, kv.KindSet, ""),
	}, nil, []kv.SeqNum{1, 3}, false)
	// Stripes: {1}, {2,3}, {4,5} → keep 1, 3, 5.
	eq(t, got, "a@5#SET", "a@3#SET", "a@1#SET")
}

func TestCITombstoneShadowsAndSurvivesAboveBottom(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindDelete, ""),
		e("a", 1, kv.KindSet, "v1"),
	}, nil, nil, false)
	// Not at the bottom: the tombstone must survive to shadow deeper
	// levels; the set it shadows is dropped.
	eq(t, got, "a@2#DELETE")
}

func TestCITombstonePurgedAtBottom(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindDelete, ""),
		e("a", 1, kv.KindSet, "v1"),
		e("b", 3, kv.KindSet, "v3"),
	}, nil, nil, true)
	eq(t, got, "b@3#SET")
}

func TestCITombstoneKeptAtBottomUnderSnapshot(t *testing.T) {
	// A snapshot at 1 protects the old version; the tombstone must also
	// survive so the deletion stays visible to newer readers.
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindDelete, ""),
		e("a", 1, kv.KindSet, "v1"),
	}, nil, []kv.SeqNum{1}, true)
	eq(t, got, "a@2#DELETE", "a@1#SET")
}

func TestCISingleDeleteAnnihilates(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindSingleDelete, ""),
		e("a", 1, kv.KindSet, "v1"),
		e("b", 3, kv.KindSet, "v3"),
	}, nil, nil, false)
	eq(t, got, "b@3#SET")
}

func TestCISingleDeleteBlockedBySnapshot(t *testing.T) {
	// Snapshot between the pair: both must survive.
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindSingleDelete, ""),
		e("a", 1, kv.KindSet, "v1"),
	}, nil, []kv.SeqNum{1}, false)
	eq(t, got, "a@2#SINGLEDELETE", "a@1#SET")
}

func TestCISingleDeleteWithoutMatchSurvives(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindSingleDelete, ""),
		e("b", 1, kv.KindSet, "v1"),
	}, nil, nil, false)
	eq(t, got, "a@2#SINGLEDELETE", "b@1#SET")
}

func TestCISingleDeleteOverTombstoneKeepsBoth(t *testing.T) {
	// SingleDelete annihilates only with a plain Set.
	got := runCI(t, []kv.Entry{
		e("a", 3, kv.KindSingleDelete, ""),
		e("a", 2, kv.KindDelete, ""),
		e("a", 1, kv.KindSet, "v1"),
	}, nil, nil, false)
	// The SD is kept; the Delete is dropped (same stripe, older than a
	// kept entry); the Set is dropped likewise.
	eq(t, got, "a@3#SINGLEDELETE")
}

func TestCIRangeDelShadowsSameStripe(t *testing.T) {
	rts := []kv.RangeTombstone{{Start: []byte("a"), End: []byte("c"), Seq: 10}}
	got := runCI(t, []kv.Entry{
		e("a", 5, kv.KindSet, ""),
		e("b", 7, kv.KindSet, ""),
		e("c", 6, kv.KindSet, ""), // end-exclusive: survives
		e("d", 4, kv.KindSet, ""),
	}, rts, nil, false)
	eq(t, got, "c@6#SET", "d@4#SET")
}

func TestCIRangeDelRespectsSnapshotStripes(t *testing.T) {
	rts := []kv.RangeTombstone{{Start: []byte("a"), End: []byte("z"), Seq: 10}}
	// Snapshot at 5 protects the version at seq 5 from the rangedel at
	// seq 10 (different stripes).
	got := runCI(t, []kv.Entry{
		e("k", 5, kv.KindSet, ""),
		e("k", 7, kv.KindSet, ""),
	}, rts, []kv.SeqNum{5}, false)
	// seq 7 is same-stripe as the rangedel → dropped; seq 5 protected.
	eq(t, got, "k@5#SET")
}

func TestCINewerThanRangeDelSurvives(t *testing.T) {
	rts := []kv.RangeTombstone{{Start: []byte("a"), End: []byte("z"), Seq: 10}}
	got := runCI(t, []kv.Entry{
		e("k", 12, kv.KindSet, ""),
	}, rts, nil, false)
	eq(t, got, "k@12#SET")
}

func TestCIValuePointerTreatedAsSet(t *testing.T) {
	got := runCI(t, []kv.Entry{
		e("a", 2, kv.KindSingleDelete, ""),
		e("a", 1, kv.KindValuePointer, "ptr"),
	}, nil, nil, false)
	// SingleDelete annihilates with a value pointer too.
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestCIEmptyInput(t *testing.T) {
	if got := runCI(t, nil, nil, nil, true); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestStripeOf(t *testing.T) {
	snaps := []kv.SeqNum{5, 10, 20}
	for _, c := range []struct {
		seq  kv.SeqNum
		want int
	}{
		{1, 0}, {5, 0}, {6, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3},
	} {
		if got := stripeOf(c.seq, snaps); got != c.want {
			t.Errorf("stripeOf(%d) = %d, want %d", c.seq, got, c.want)
		}
	}
	if stripeOf(7, nil) != 0 {
		t.Error("no snapshots: single stripe")
	}
}

func TestSurvivingRangeDels(t *testing.T) {
	rts := []kv.RangeTombstone{{Start: []byte("a"), End: []byte("b"), Seq: 1}}
	if got := survivingRangeDels(rts, true, nil); got != nil {
		t.Error("bottom + no snapshots: drop all")
	}
	if got := survivingRangeDels(rts, true, []kv.SeqNum{1}); len(got) != 1 {
		t.Error("snapshots pin rangedels at bottom")
	}
	if got := survivingRangeDels(rts, false, nil); len(got) != 1 {
		t.Error("above bottom: keep")
	}
}
