package core

import (
	"errors"
	"fmt"
	"time"

	"lsmlab/internal/admission"
	"lsmlab/internal/bloom"
	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/trace"
	"lsmlab/internal/wal"
)

// Batch is an atomic group of writes applied with consecutive sequence
// numbers. Keys and values are copied into an internal arena that Reset
// retains, so a batch reused across a write loop reaches a steady state
// of zero allocations per operation.
type Batch struct {
	ops   []wal.Op
	arena []byte // append-only byte arena backing the copied keys/values
}

// batchArenaMin is the smallest arena block allocated once a batch
// copies its first bytes.
const batchArenaMin = 1024

// copyBytes appends p to the arena and returns the stable copy. When
// the current block is full a larger one is allocated; earlier blocks
// stay alive through the op slices that reference them, so previously
// returned copies are never invalidated.
func (b *Batch) copyBytes(p []byte) []byte {
	if len(p) == 0 {
		return nil
	}
	if cap(b.arena)-len(b.arena) < len(p) {
		n := 2 * cap(b.arena)
		if n < batchArenaMin {
			n = batchArenaMin
		}
		if n < len(p) {
			n = len(p)
		}
		b.arena = make([]byte, 0, n)
	}
	off := len(b.arena)
	b.arena = append(b.arena, p...)
	return b.arena[off:len(b.arena):len(b.arena)]
}

// Put records an insertion or update.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindSet, Key: b.copyBytes(key), Value: b.copyBytes(value)})
}

// Delete records a point tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindDelete, Key: b.copyBytes(key)})
}

// SingleDelete records a single-delete tombstone (for keys written at
// most once since the last delete; tutorial §2.3.3, [101]).
func (b *Batch) SingleDelete(key []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindSingleDelete, Key: b.copyBytes(key)})
}

// DeleteRange records a range tombstone covering [start, end).
func (b *Batch) DeleteRange(start, end []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindRangeDelete, Key: b.copyBytes(start), Value: b.copyBytes(end)})
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse, retaining the op slice and the
// current arena block.
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.arena = b.arena[:0]
}

// EachOp calls fn for every operation in the batch, in insertion order.
// The key and value slices alias the batch's arena and stay valid until
// the next Reset. The partition router uses it to fan a batch out into
// per-shard sub-batches.
func (b *Batch) EachOp(fn func(kind kv.Kind, key, value []byte)) {
	for i := range b.ops {
		fn(b.ops[i].Kind, b.ops[i].Key, b.ops[i].Value)
	}
}

// AddOp appends one operation of the given kind — the generalized form
// of Put/Delete/SingleDelete/DeleteRange, letting a router replay ops
// observed via EachOp without a per-kind switch. For KindRangeDelete
// the key is the inclusive start and the value the exclusive end.
func (b *Batch) AddOp(kind kv.Kind, key, value []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kind, Key: b.copyBytes(key), Value: b.copyBytes(value)})
}

func cp(b []byte) []byte { return append([]byte(nil), b...) }

// Put inserts or updates one key.
func (db *DB) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Apply(&b)
}

// Delete removes a key via a tombstone.
func (db *DB) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Apply(&b)
}

// SingleDelete removes a key that was written exactly once.
func (db *DB) SingleDelete(key []byte) error {
	var b Batch
	b.SingleDelete(key)
	return db.Apply(&b)
}

// DeleteRange removes every key in [start, end).
func (db *DB) DeleteRange(start, end []byte) error {
	var b Batch
	b.DeleteRange(start, end)
	return db.Apply(&b)
}

// Apply atomically applies a batch: one WAL record, consecutive
// sequence numbers, all-or-nothing visibility within the memtable.
//
// Concurrent Apply calls flow through the group-commit pipeline
// (commit.go): one leader writes and syncs the whole group's WAL
// records, the members insert into the memtable concurrently, and the
// batch becomes visible — and Apply returns — once the visibleSeq
// watermark passes it in commit order.
func (db *DB) Apply(b *Batch) error { return db.apply(b, 0) }

// ApplyTraced is Apply carrying a wire-propagated trace id: the commit's
// span adopts the id (0 mints a fresh one) and is always retained in the
// tracer's ring. Without a tracer it behaves exactly like Apply.
func (db *DB) ApplyTraced(b *Batch, traceID uint64) error { return db.apply(b, traceID) }

func (db *DB) apply(b *Batch, traceID uint64) error {
	if len(b.ops) == 0 {
		return nil
	}
	// A replica refuses external writes outright; shipped batches and
	// anti-entropy repairs enter through replica.go instead.
	if db.opts.Replica {
		return ErrReplica
	}
	// Degraded mode fails writes fast — before value-log diversion, so
	// a read-only engine appends nothing anywhere. The check is one
	// atomic load on the healthy path.
	if err := db.degradedErr(); err != nil {
		return err
	}
	// Commit latency includes any stall time spent in makeRoomLocked —
	// the tail a caller actually observes.
	if db.timeOps {
		start := db.opts.NowNs()
		defer func() { db.m.PutNs.RecordSince(start, db.opts.NowNs()) }()
	}
	if db.prof != nil {
		for i := range b.ops {
			h := bloom.Hash64(b.ops[i].Key)
			if !db.prof.tick(h) {
				continue
			}
			op := profPut
			if b.ops[i].Kind != kv.KindSet && b.ops[i].Kind != kv.KindMerge {
				op = profDelete
			}
			db.prof.observe(op, h, b.ops[i].Key)
		}
	}
	var sp *trace.Span
	if db.tracer != nil {
		op := trace.OpBatch
		if len(b.ops) == 1 {
			op = trace.OpPut
		}
		sp = db.tracer.StartID(op, traceID)
		if sp != nil { // head sampling may have declined this op
			if traceID != 0 {
				sp.Retain() // explicitly requested over the wire
			}
			defer db.tracer.Finish(sp)
			sp.AddEntries(len(b.ops))
			sp.SetTenant(admission.TenantOf(b.ops[0].Key))
			var bytes int64
			for i := range b.ops {
				bytes += int64(len(b.ops[i].Key) + len(b.ops[i].Value))
			}
			sp.AddBytes(bytes)
		}
	}

	// WiscKey: divert large values to the value log before WAL framing
	// so that recovery replays pointers (the value bytes are already
	// durable in the log). The value log is internally synchronized, so
	// diversion runs before the pipeline, outside every engine lock.
	ops := b.ops
	if db.vlog != nil && db.opts.ValueSeparationThreshold > 0 {
		var t0 int64
		if sp != nil {
			t0 = db.opts.NowNs()
		}
		ops = make([]wal.Op, len(b.ops))
		copy(ops, b.ops)
		for i := range ops {
			if ops[i].Kind == kv.KindSet && len(ops[i].Value) >= db.opts.ValueSeparationThreshold {
				p, err := db.vlog.Append(ops[i].Key, ops[i].Value)
				if err != nil {
					sp.SetErr(err)
					return err
				}
				ops[i].Kind = kv.KindValuePointer
				ops[i].Value = p.Encode()
			}
		}
		if sp != nil {
			sp.StageSince("vlog", t0, db.opts.NowNs())
		}
	}

	var tCommit int64
	if sp != nil {
		tCommit = db.opts.NowNs()
	}
	req := &commitRequest{userOps: b.ops, ops: ops, donePub: make(chan struct{})}
	if db.commit.enqueue(req) {
		db.commitLead(req)
	} else {
		<-req.wake
		if req.isLeader {
			db.commitLead(req)
		}
	}
	if !req.registered {
		// The group failed before sequence assignment (stall abort or
		// background error); nothing to apply or publish.
		sp.AddStallNs(req.stallNs)
		sp.SetErr(req.err)
		return req.err
	}
	var tApply int64
	if sp != nil {
		tApply = db.opts.NowNs()
		sp.StageSince("commit", tCommit, tApply)
		sp.AddStallNs(req.stallNs)
		sp.SetBatches(req.groupN)
	}
	if req.err == nil {
		db.applyToMem(req)
	}
	req.mem.writers.Done()
	var tPub int64
	if sp != nil {
		tPub = db.opts.NowNs()
		sp.StageSince("apply", tApply, tPub)
	}
	db.commit.publish(db, req)
	if sp != nil {
		now := db.opts.NowNs()
		sp.StageSince("publish", tPub, now)
		// Commit wait is everything spent in the pipeline — WAL group
		// write plus ordered publish — as the caller observed it.
		sp.AddCommitWaitNs(now - tCommit - (tPub - tApply))
	}
	if req.err != nil {
		sp.SetErr(req.err)
		return req.err
	}

	// Rotate a full buffer only while the immutable queue has room;
	// otherwise leave it over-full and let the next write stall in
	// makeRoomLocked until a flush completes.
	if req.mem.mt.ApproximateBytes() >= db.opts.BufferBytes {
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.mem == req.mem && db.mem.mt.ApproximateBytes() >= db.opts.BufferBytes &&
			len(db.imm) < db.opts.MaxImmutableBuffers {
			return db.rotateMemtableLocked()
		}
	}
	return nil
}

// ErrBackpressure is the sentinel for writes aborted by the stall
// timeout: the engine could not make room within Options.StallTimeout,
// so instead of blocking indefinitely the write fails fast — before
// sequence assignment and WAL append, so nothing of it is durable.
// Errors returned on this path satisfy errors.Is(err, ErrBackpressure)
// and are a *BackpressureError carrying the stall cause and duration.
var ErrBackpressure = errors.New("lsm: write backpressure (stall timeout exceeded)")

// BackpressureError is the typed error of a stall-timeout abort.
type BackpressureError struct {
	Reason   string // stall cause: "immutable-buffers" or "l0-runs"
	WaitedNs int64  // how long the writer was blocked before aborting
}

// Error implements error.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("lsm: write backpressure: stalled %dms on %s (stall timeout exceeded)",
		e.WaitedNs/1e6, e.Reason)
}

// Is reports true for ErrBackpressure, so errors.Is(err,
// ErrBackpressure) identifies stall-timeout aborts — including through
// the errors.Join of a multi-shard apply — without manual unwrapping.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// makeRoomLocked enforces the write stalls of tutorial §2.2.1/§2.2.3:
// writers wait when the immutable-buffer queue is full or level 0 has
// accumulated too many runs. One stall event is counted per blocked
// write, with the full blocked duration metered. With
// Options.StallTimeout set, a writer blocked that long aborts with a
// *BackpressureError instead of waiting forever; the Begin/End event
// pairing and StallNs accounting hold on every exit path (success,
// degradation, close, timeout), which the race-enabled regression test
// TestStallAbortPairsEvents pins down.
func (db *DB) makeRoomLocked() (stallNs int64, err error) {
	stalled := false
	var stallStart int64
	var deadline *time.Timer
	defer func() {
		if deadline != nil {
			deadline.Stop()
		}
		if stalled {
			stallNs = db.opts.NowNs() - stallStart
			db.m.StallNs.Add(stallNs)
			db.emit(events.Event{Type: events.WriteStallEnd, DurationNs: stallNs})
		}
	}()
	for {
		l0Stall := db.opts.StallL0Runs > 0 && len(db.version.Levels[0].Runs) >= db.opts.StallL0Runs
		switch {
		case db.closed:
			return 0, ErrClosed
		case db.degraded != nil:
			// Degradation mid-stall: the flush that would have made room
			// is never coming, so blocked writers fail with the cause
			// (degradeLocked broadcast the condition variable).
			return 0, db.degradedErrLocked()
		case l0Stall,
			db.mem.mt.ApproximateBytes() >= db.opts.BufferBytes &&
				len(db.imm) >= db.opts.MaxImmutableBuffers:
			cause := "immutable-buffers"
			if l0Stall {
				cause = "l0-runs"
			}
			if !stalled {
				stalled = true
				stallStart = db.opts.NowNs()
				db.m.WriteStalls.Add(1)
				db.emit(events.Event{Type: events.WriteStallBegin, Reason: cause})
				if db.opts.StallTimeout > 0 {
					// Guarantee a wakeup at the deadline: background
					// progress may never signal the condition variable
					// (that is exactly the overload case), so the abort
					// must not depend on it.
					deadline = time.AfterFunc(db.opts.StallTimeout, db.cond.Broadcast)
				}
			}
			if db.opts.StallTimeout > 0 &&
				db.opts.NowNs()-stallStart >= int64(db.opts.StallTimeout) {
				db.m.StallAborts.Add(1)
				return 0, &BackpressureError{Reason: cause, WaitedNs: db.opts.NowNs() - stallStart}
			}
			// Background workers were woken when the condition arose;
			// the writer just waits for them to signal progress.
			db.cond.Wait()
		case db.mem.mt.ApproximateBytes() < db.opts.BufferBytes:
			return 0, nil
		default:
			return 0, db.rotateMemtableLocked()
		}
	}
}

// rotateMemtableLocked retires the mutable buffer to the immutable
// queue and installs a fresh one (and WAL segment). Callers hold db.mu;
// the WAL file swap additionally takes db.walMu so it cannot interleave
// with a commit group's buffered append (commit.go pins db.wal under
// both locks before appending).
func (db *DB) rotateMemtableLocked() error {
	if db.mem.mt.Len() == 0 && len(db.mem.rangeTombstones()) == 0 {
		return nil
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	// Seal the active WAL before anything moves: the buffer's frames must
	// be durable before the flusher can own (and later delete) them.
	if db.walFile != nil {
		if err := db.walFile.Sync(); err != nil {
			return err
		}
	}
	// Install the replacement buffer and WAL segment BEFORE retiring the
	// full one, so a failed install leaves the rotation un-begun: db.mem
	// unchanged, the sealed WAL still active (acknowledged writes stay
	// durable), and nothing queued. Appending to db.imm first and then
	// erroring out used to strand the buffer in the queue without a
	// broadcast — stalled writers waited on workers that were never woken
	// (found by the crash+fault torture harness).
	old, oldWAL := db.mem, db.walFile
	if err := db.newMemtableLocked(); err != nil {
		return err
	}
	db.imm = append(db.imm, old)
	db.maybeScheduleWork()
	if oldWAL != nil {
		return oldWAL.Close()
	}
	return nil
}

// GCValueLog garbage-collects the oldest sealed value-log segment:
// records whose pointer is still the live value of their key are
// re-appended (and their tree pointers refreshed); the segment is then
// deleted. Returns the number of live records moved and whether a
// segment was collected. It is a no-op without value separation.
func (db *DB) GCValueLog() (moved int, collected bool, err error) {
	if db.vlog == nil {
		return 0, false, nil
	}
	start := db.opts.NowNs()
	defer func() {
		db.emit(events.Event{Type: events.VlogGCEnd, MovedRecords: moved,
			Collected: collected, DurationNs: db.opts.NowNs() - start, Err: err})
	}()
	if err := db.vlog.RotateForGC(); err != nil {
		return 0, false, err
	}
	num, ok := db.vlog.OldestSealed()
	if !ok {
		return 0, false, nil
	}
	err = db.vlog.ScanFile(num, func(key, value []byte, p wiscPointer) error {
		live, err := db.pointerIsLive(key, p)
		if err != nil {
			return err
		}
		if !live {
			return nil
		}
		// Re-put through the normal write path: the value lands in the
		// active segment with a fresh pointer.
		if err := db.Put(key, value); err != nil {
			return err
		}
		moved++
		return nil
	})
	if err != nil {
		return moved, false, err
	}
	if err := db.vlog.Remove(num); err != nil {
		return moved, false, err
	}
	return moved, true, nil
}

var errStopScan = errors.New("stop scan")
