package core

import (
	"errors"

	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/wal"
)

// Batch is an atomic group of writes applied with consecutive sequence
// numbers.
type Batch struct {
	ops []wal.Op
}

// Put records an insertion or update.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindSet, Key: cp(key), Value: cp(value)})
}

// Delete records a point tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindDelete, Key: cp(key)})
}

// SingleDelete records a single-delete tombstone (for keys written at
// most once since the last delete; tutorial §2.3.3, [101]).
func (b *Batch) SingleDelete(key []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindSingleDelete, Key: cp(key)})
}

// DeleteRange records a range tombstone covering [start, end).
func (b *Batch) DeleteRange(start, end []byte) {
	b.ops = append(b.ops, wal.Op{Kind: kv.KindRangeDelete, Key: cp(start), Value: cp(end)})
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

func cp(b []byte) []byte { return append([]byte(nil), b...) }

// Put inserts or updates one key.
func (db *DB) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Apply(&b)
}

// Delete removes a key via a tombstone.
func (db *DB) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Apply(&b)
}

// SingleDelete removes a key that was written exactly once.
func (db *DB) SingleDelete(key []byte) error {
	var b Batch
	b.SingleDelete(key)
	return db.Apply(&b)
}

// DeleteRange removes every key in [start, end).
func (db *DB) DeleteRange(start, end []byte) error {
	var b Batch
	b.DeleteRange(start, end)
	return db.Apply(&b)
}

// Apply atomically applies a batch: one WAL record, consecutive
// sequence numbers, all-or-nothing visibility within the memtable.
func (db *DB) Apply(b *Batch) error {
	if len(b.ops) == 0 {
		return nil
	}
	// Commit latency includes any stall time spent in makeRoomLocked —
	// the tail a caller actually observes.
	if db.timeOps {
		start := db.opts.NowNs()
		defer func() { db.m.PutNs.RecordSince(start, db.opts.NowNs()) }()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.makeRoomLocked(); err != nil {
		return err
	}
	if db.bgErr != nil {
		return db.bgErr
	}

	base := kv.SeqNum(db.lastSeq.Load()) + 1

	// WiscKey: divert large values to the value log before WAL framing
	// so that recovery replays pointers (the value bytes are already
	// durable in the log).
	ops := b.ops
	if db.vlog != nil && db.opts.ValueSeparationThreshold > 0 {
		ops = make([]wal.Op, len(b.ops))
		copy(ops, b.ops)
		for i := range ops {
			if ops[i].Kind == kv.KindSet && len(ops[i].Value) >= db.opts.ValueSeparationThreshold {
				p, err := db.vlog.Append(ops[i].Key, ops[i].Value)
				if err != nil {
					return err
				}
				ops[i].Kind = kv.KindValuePointer
				ops[i].Value = p.Encode()
			}
		}
	}

	if !db.opts.DisableWAL {
		n, err := db.wal.Append(&wal.Batch{Seq: base, Ops: ops})
		if err != nil {
			return err
		}
		db.m.WALBytes.Add(int64(n))
		if db.opts.SyncWAL {
			if err := db.wal.Sync(); err != nil {
				return err
			}
		}
	}

	seq := base
	for i := range ops {
		op := ops[i]
		switch op.Kind {
		case kv.KindRangeDelete:
			db.mem.addRangeDel(kv.RangeTombstone{Start: op.Key, End: op.Value, Seq: seq})
			db.m.Deletes.Add(1)
		case kv.KindDelete, kv.KindSingleDelete:
			db.mem.mt.Add(seq, op.Kind, op.Key, op.Value)
			db.m.Deletes.Add(1)
		default:
			db.mem.mt.Add(seq, op.Kind, op.Key, op.Value)
			db.m.Puts.Add(1)
		}
		// Ingested bytes are accounted at user-visible size: for
		// separated values, the value bytes count here (they were
		// ingested) even though the tree only carries a pointer.
		userLen := len(b.ops[i].Key) + len(b.ops[i].Value)
		db.m.BytesIngested.Add(int64(userLen))
		seq++
	}
	db.lastSeq.Store(uint64(seq - 1))

	// Rotate a full buffer only while the immutable queue has room;
	// otherwise leave it over-full and let the next write stall in
	// makeRoomLocked until a flush completes.
	if db.mem.mt.ApproximateBytes() >= db.opts.BufferBytes &&
		len(db.imm) < db.opts.MaxImmutableBuffers {
		return db.rotateMemtableLocked()
	}
	return nil
}

// makeRoomLocked enforces the write stalls of tutorial §2.2.1/§2.2.3:
// writers wait when the immutable-buffer queue is full or level 0 has
// accumulated too many runs. One stall event is counted per blocked
// write, with the full blocked duration metered.
func (db *DB) makeRoomLocked() error {
	stalled := false
	var stallStart int64
	defer func() {
		if stalled {
			dur := db.opts.NowNs() - stallStart
			db.m.StallNs.Add(dur)
			db.emit(events.Event{Type: events.WriteStallEnd, DurationNs: dur})
		}
	}()
	for {
		l0Stall := db.opts.StallL0Runs > 0 && len(db.version.Levels[0].Runs) >= db.opts.StallL0Runs
		switch {
		case db.closed:
			return ErrClosed
		case l0Stall,
			db.mem.mt.ApproximateBytes() >= db.opts.BufferBytes &&
				len(db.imm) >= db.opts.MaxImmutableBuffers:
			if !stalled {
				stalled = true
				stallStart = db.opts.NowNs()
				db.m.WriteStalls.Add(1)
				cause := "immutable-buffers"
				if l0Stall {
					cause = "l0-runs"
				}
				db.emit(events.Event{Type: events.WriteStallBegin, Reason: cause})
			}
			// Background workers were woken when the condition arose;
			// the writer just waits for them to signal progress.
			db.cond.Wait()
		case db.mem.mt.ApproximateBytes() < db.opts.BufferBytes:
			return nil
		default:
			return db.rotateMemtableLocked()
		}
	}
}

// rotateMemtableLocked retires the mutable buffer to the immutable
// queue and installs a fresh one (and WAL segment).
func (db *DB) rotateMemtableLocked() error {
	if db.mem.mt.Len() == 0 && len(db.mem.rangeDels) == 0 {
		return nil
	}
	if db.walFile != nil {
		if err := db.walFile.Sync(); err != nil {
			return err
		}
		if err := db.walFile.Close(); err != nil {
			return err
		}
		db.walFile = nil
	}
	db.imm = append(db.imm, db.mem)
	if err := db.newMemtableLocked(); err != nil {
		return err
	}
	db.maybeScheduleWork()
	return nil
}

// GCValueLog garbage-collects the oldest sealed value-log segment:
// records whose pointer is still the live value of their key are
// re-appended (and their tree pointers refreshed); the segment is then
// deleted. Returns the number of live records moved and whether a
// segment was collected. It is a no-op without value separation.
func (db *DB) GCValueLog() (moved int, collected bool, err error) {
	if db.vlog == nil {
		return 0, false, nil
	}
	start := db.opts.NowNs()
	defer func() {
		db.emit(events.Event{Type: events.VlogGCEnd, MovedRecords: moved,
			Collected: collected, DurationNs: db.opts.NowNs() - start, Err: err})
	}()
	if err := db.vlog.RotateForGC(); err != nil {
		return 0, false, err
	}
	num, ok := db.vlog.OldestSealed()
	if !ok {
		return 0, false, nil
	}
	err = db.vlog.ScanFile(num, func(key, value []byte, p wiscPointer) error {
		live, err := db.pointerIsLive(key, p)
		if err != nil {
			return err
		}
		if !live {
			return nil
		}
		// Re-put through the normal write path: the value lands in the
		// active segment with a fresh pointer.
		if err := db.Put(key, value); err != nil {
			return err
		}
		moved++
		return nil
	})
	if err != nil {
		return moved, false, err
	}
	if err := db.vlog.Remove(num); err != nil {
		return moved, false, err
	}
	return moved, true, nil
}

var errStopScan = errors.New("stop scan")
