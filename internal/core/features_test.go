package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"lsmlab/internal/compaction"
	"lsmlab/internal/vfs"
)

func TestRangeDeleteBasic(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	db.DeleteRange([]byte("k10"), []byte("k20"))
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		_, err := db.Get([]byte(k))
		if i >= 10 && i < 20 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s should be range-deleted: %v", k, err)
			}
		} else if err != nil {
			t.Fatalf("%s should survive: %v", k, err)
		}
	}
	// Writes after the range delete are visible.
	db.Put([]byte("k15"), []byte("resurrected"))
	if v, err := db.Get([]byte("k15")); err != nil || string(v) != "resurrected" {
		t.Fatalf("post-rangedel write: %q %v", v, err)
	}
}

func TestRangeDeleteSurvivesFlushAndCompaction(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	db.Flush()
	db.DeleteRange([]byte("k050"), []byte("k150"))
	db.Flush()
	db.WaitIdle()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%03d", i)
		_, err := db.Get([]byte(k))
		if i >= 50 && i < 150 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s should be deleted after flush: %v", k, err)
			}
		} else if err != nil {
			t.Fatalf("%s should survive flush: %v", k, err)
		}
	}
	// Scans must agree.
	got, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan found %d live keys, want 100", len(got))
	}
	// After a full manual compaction the deleted data is physically gone.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Scan(nil, nil, 0)
	if len(got) != 100 {
		t.Fatalf("post-compaction scan found %d, want 100", len(got))
	}
	for i := 50; i < 150; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%03d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("key %d resurrected by compaction: %v", i, err)
		}
	}
}

func TestSingleDelete(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Put([]byte("once"), []byte("v"))
	db.SingleDelete([]byte("once"))
	if _, err := db.Get([]byte("once")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("single-deleted key visible: %v", err)
	}
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("once")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("single-delete after compaction: %v", err)
	}
	// The annihilation leaves no tombstone behind.
	m := db.Metrics()
	if m.TombstonesDropped == 0 {
		t.Error("single-delete should annihilate with its insert")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Put([]byte("k"), []byte("old"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("new"))
	db.Delete([]byte("gone-later"))

	if v, err := snap.Get([]byte("k")); err != nil || string(v) != "old" {
		t.Fatalf("snapshot get: %q %v", v, err)
	}
	if v, _ := db.Get([]byte("k")); string(v) != "new" {
		t.Fatal("live read must see new value")
	}
	// Snapshot survives flush and compaction.
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, err := snap.Get([]byte("k")); err != nil || string(v) != "old" {
		t.Fatalf("snapshot after compaction: %q %v", v, err)
	}
	// Snapshot of a later-deleted key still sees it.
	db.Put([]byte("d"), []byte("dv"))
	snap2 := db.NewSnapshot()
	defer snap2.Release()
	db.Delete([]byte("d"))
	db.Flush()
	db.Compact()
	if v, err := snap2.Get([]byte("d")); err != nil || string(v) != "dv" {
		t.Fatalf("snapshot of deleted key: %q %v", v, err)
	}
	// Snapshot scan sees the old world.
	kvs, err := snap2.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, kvp := range kvs {
		if string(kvp.Key) == "d" {
			found = true
		}
	}
	if !found {
		t.Error("snapshot scan must include later-deleted key")
	}
}

func TestSnapshotReleaseAllowsGC(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Put([]byte("k"), []byte("old"))
	snap := db.NewSnapshot()
	db.Put([]byte("k"), []byte("new"))
	snap.Release()
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// After release + compaction only one version survives anywhere.
	if v, _ := db.Get([]byte("k")); string(v) != "new" {
		t.Fatal("live value wrong")
	}
	if _, err := snap.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Error("released snapshot must refuse reads")
	}
}

func TestIteratorBoundsAndSeek(t *testing.T) {
	db, _ := testDB(t, nil)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	db.Flush()
	for i := 100; i < 200; i++ { // half in memtable, half on disk
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	it, err := db.NewIterator(IterOptions{LowerBound: []byte("k050"), UpperBound: []byte("k150")})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		k := string(it.Key())
		if k < "k050" || k >= "k150" {
			t.Fatalf("out of bounds: %s", k)
		}
		count++
	}
	if count != 100 {
		t.Fatalf("iterated %d, want 100", count)
	}
	if !it.SeekGE([]byte("k100")) || string(it.Key()) != "k100" {
		t.Fatal("seek existing")
	}
	if !it.SeekGE([]byte("k000")) || string(it.Key()) != "k050" {
		t.Fatal("seek below lower bound must clamp")
	}
	if it.SeekGE([]byte("k199")) {
		t.Fatal("seek past upper bound")
	}
}

func TestWiscKeySeparation(t *testing.T) {
	db, _ := testDB(t, func(o *Options) {
		o.ValueSeparationThreshold = 128
	})
	small := []byte("small")
	large := make([]byte, 4096)
	for i := range large {
		large[i] = byte(i)
	}
	db.Put([]byte("small"), small)
	db.Put([]byte("large"), large)
	db.Flush()
	db.WaitIdle()

	if v, err := db.Get([]byte("small")); err != nil || string(v) != "small" {
		t.Fatalf("small: %v", err)
	}
	v, err := db.Get([]byte("large"))
	if err != nil || len(v) != len(large) {
		t.Fatalf("large: len=%d err=%v", len(v), err)
	}
	for i := range v {
		if v[i] != large[i] {
			t.Fatal("large value corrupted")
		}
	}
	// Iterators resolve pointers too.
	it, _ := db.NewIterator(IterOptions{})
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Key()) == "large" && len(it.Value()) != len(large) {
			t.Fatal("iterator did not resolve value pointer")
		}
	}
	// The tree's footprint is small: values live in the vlog.
	if db.vlog.DiskBytes() < int64(len(large)) {
		t.Error("value log should hold the large value")
	}
}

func TestWiscKeyRecovery(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.ValueSeparationThreshold = 64
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	large := make([]byte, 1000)
	db.Put([]byte("k"), large)
	// Crash without close; pointer is in WAL, value in vlog.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("k"))
	if err != nil || len(v) != 1000 {
		t.Fatalf("recovered separated value: len=%d err=%v", len(v), err)
	}
}

func TestWiscKeyGC(t *testing.T) {
	db, _ := testDB(t, func(o *Options) {
		o.ValueSeparationThreshold = 64
	})
	db.vlog.SetMaxFileSize(4 << 10)
	val := make([]byte, 512)
	for i := 0; i < 40; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i%10)), val) // heavy overwrites → garbage
	}
	before := db.vlog.DiskBytes()
	totalMoved := 0
	for i := 0; i < 5; i++ {
		moved, collected, err := db.GCValueLog()
		if err != nil {
			t.Fatal(err)
		}
		if !collected {
			break
		}
		totalMoved += moved
	}
	after := db.vlog.DiskBytes()
	if after >= before {
		t.Errorf("GC did not shrink the log: %d -> %d", before, after)
	}
	// All live keys still resolve.
	for i := 0; i < 10; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("k%02d", i)))
		if err != nil || len(v) != 512 {
			t.Fatalf("key %d after GC: len=%d err=%v", i, len(v), err)
		}
	}
}

func TestTombstoneAgeDrivesCompaction(t *testing.T) {
	clock := int64(1e12)
	db, _ := testDB(t, func(o *Options) {
		o.TombstoneAgeThreshold = 10 * time.Second
		o.NowNs = func() int64 { return clock }
		o.Layout = compaction.TieredFirst{K0: 100} // nothing else triggers
		o.StallL0Runs = 0
	})
	db.Put([]byte("k"), []byte("v"))
	db.Delete([]byte("k"))
	db.Flush()
	before := db.Metrics().Compactions
	// Advance the clock past the persistence threshold and nudge.
	clock += int64(60 * time.Second)
	db.mu.Lock()
	db.maybeScheduleWork()
	db.mu.Unlock()
	db.WaitIdle()
	m := db.Metrics()
	if m.Compactions <= before {
		t.Fatal("expired tombstone must force a compaction")
	}
	if m.TombstonesDropped == 0 {
		t.Error("the forced compaction should purge the tombstone")
	}
}

// gatedFS delays sstable creation until released, letting tests hold a
// flush in flight deterministically.
type gatedFS struct {
	vfs.FS
	gate chan struct{} // closed to release
}

func (g *gatedFS) Create(name string) (vfs.File, error) {
	if vfs.HasSuffix(name, ".sst") {
		<-g.gate
	}
	return g.FS.Create(name)
}

func TestWriteStallsWhenBuffersFull(t *testing.T) {
	gate := &gatedFS{FS: vfs.NewMem(), gate: make(chan struct{})}
	opts := DefaultOptions(gate, "db")
	opts.BufferBytes = 2 << 10
	opts.MaxImmutableBuffers = 1
	opts.Workers = 1
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		val := make([]byte, 512)
		// Enough writes to fill the mutable buffer, the immutable queue,
		// and then stall against the blocked flush.
		for i := 0; i < 40; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Wait until the writer reports a stall, then release the flush.
	deadline := time.After(10 * time.Second)
	for db.Metrics().WriteStalls == 0 {
		select {
		case <-deadline:
			t.Fatal("writer never stalled")
		case <-time.After(time.Millisecond):
		}
	}
	close(gate.gate)
	<-done
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().WriteStalls == 0 || db.Metrics().StallNs <= 0 {
		t.Errorf("stall accounting: %+v", db.Metrics())
	}
}

func TestMonkeyFilterMode(t *testing.T) {
	db, _ := testDB(t, func(o *Options) {
		o.FilterMode = FilterMonkey
		o.FilterBudgetBits = 1 << 20
	})
	model := applyRandomWorkload(t, db, 5, 3000, 500)
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 500)
	// Zero-result lookups *inside* the populated key range (so fence
	// pointers cannot exclude them) should mostly be filtered.
	for i := 0; i < 500; i++ {
		db.Get([]byte(fmt.Sprintf("key-%05d-absent", i)))
	}
	m := db.Metrics()
	if m.FilterProbes == 0 || m.FilterNegatives == 0 {
		t.Errorf("monkey filters unused: %+v", m)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db, _ := testDB(t, func(o *Options) { o.Workers = 2 })
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 1500; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := db.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := db.Get([]byte(fmt.Sprintf("w0-%04d", 100)))
				if err != nil && !errors.Is(err, ErrNotFound) {
					errCh <- err
					return
				}
				it, err := db.NewIterator(IterOptions{UpperBound: []byte("w1")})
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				for ok := it.First(); ok && n < 50; ok = it.Next() {
					n++
				}
				it.Close()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	db.WaitIdle()
	// Verify all writer data.
	for w := 0; w < 3; w++ {
		for i := 0; i < 1500; i += 97 {
			k := []byte(fmt.Sprintf("w%d-%04d", w, i))
			if _, err := db.Get(k); err != nil {
				t.Fatalf("%s: %v", k, err)
			}
		}
	}
}

func TestDisableWAL(t *testing.T) {
	db, _ := testDB(t, func(o *Options) { o.DisableWAL = true })
	model := applyRandomWorkload(t, db, 9, 2000, 300)
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 300)
	if db.Metrics().WALBytes != 0 {
		t.Error("WAL disabled but bytes were written")
	}
}

func TestFilterNoneMode(t *testing.T) {
	db, _ := testDB(t, func(o *Options) { o.FilterMode = FilterNone })
	model := applyRandomWorkload(t, db, 13, 2000, 300)
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 300)
	if db.Metrics().FilterProbes != 0 {
		t.Error("filters disabled but probed")
	}
}

func TestCompactionThrottle(t *testing.T) {
	// A virtual clock: throttle sleeps advance time instantly, keeping
	// the test deterministic and fast.
	var mu sync.Mutex
	clock := int64(1e12)
	var slept int64
	db, _ := testDB(t, func(o *Options) {
		// Small enough that single compactions exceed their own bucket's
		// one-second burst (the limiter is per-job).
		o.CompactionBandwidthBytesPerSec = 4 << 10
		o.NowNs = func() int64 { mu.Lock(); defer mu.Unlock(); return clock }
		o.SleepFunc = func(d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			clock += int64(d)
			slept += int64(d)
		}
	})
	applyRandomWorkload(t, db, 21, 4000, 600)
	db.WaitIdle()
	if db.Metrics().Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	if slept == 0 {
		t.Error("throttled compactions should have charged sleep time")
	}
}

func TestSpaceAmplificationReported(t *testing.T) {
	db, _ := testDB(t, nil)
	applyRandomWorkload(t, db, 17, 3000, 100) // heavy overwrites
	db.Flush()
	db.WaitIdle()
	sa := db.SpaceAmplification()
	if sa < 1 {
		t.Errorf("space amplification %v < 1", sa)
	}
	db.Compact()
	if after := db.SpaceAmplification(); after > sa+0.01 {
		t.Errorf("full compaction should not increase space amp: %v -> %v", sa, after)
	}
}
