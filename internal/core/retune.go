package core

import (
	"errors"

	"lsmlab/internal/compaction"
)

// SetShape changes the compaction layout and/or size ratio of a running
// database — online data-layout transformation, the open challenge of
// tutorial §2.3.4(3) and the actuator for robust tuning under workload
// shift (§2.3.2). The tree is not rewritten eagerly: the new shape
// becomes the target, and subsequent flushes and compactions reorganize
// data toward it (a tiered tree under a new leveled target merges down
// run by run; a leveled tree under a new tiered target simply stops
// merging greedily).
//
// Passing a nil layout keeps the current one; sizeRatio <= 0 keeps the
// current ratio.
func (db *DB) SetShape(layout compaction.Layout, sizeRatio int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	popts := db.picker.Options()
	if layout != nil {
		popts.Layout = layout
		db.opts.Layout = layout
	}
	if sizeRatio > 0 {
		if sizeRatio < 2 {
			return errors.New("lsm: size ratio must be at least 2")
		}
		popts.SizeRatio = sizeRatio
		db.opts.SizeRatio = sizeRatio
	}
	db.picker = compaction.NewPicker(popts)
	db.maybeScheduleWork()
	return nil
}

// Shape reports the current compaction layout name and size ratio.
func (db *DB) Shape() (layout string, sizeRatio int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	popts := db.picker.Options()
	return popts.Layout.Name(), popts.SizeRatio
}
