package core

import (
	"fmt"
	"testing"

	"lsmlab/internal/compaction"
)

func TestSetShapeTieringToLeveling(t *testing.T) {
	// Start tiered: runs accumulate.
	db, _ := testDB(t, func(o *Options) { o.Layout = compaction.Tiering{K: 4} })
	model := applyRandomWorkload(t, db, 61, 4000, 600)
	db.Flush()
	db.WaitIdle()
	if name, _ := db.Shape(); name != "tiering(4)" {
		t.Fatalf("shape %q", name)
	}

	// Switch to leveling online: the picker now sees every multi-run
	// level as over capacity and merges them down.
	if err := db.SetShape(compaction.Leveling{}, 0); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	if name, _ := db.Shape(); name != "leveling" {
		t.Fatalf("shape after retune %q", name)
	}
	// Every level must now hold at most one run (the leveled invariant);
	// the last level may keep runs merged earlier, so check levels
	// 0..N-2 which the picker governs.
	ts := db.TreeStats()
	for _, l := range ts.Levels[:len(ts.Levels)-1] {
		if l.Runs > 1 {
			t.Errorf("L%d still tiered after retune: %d runs", l.Level, l.Runs)
		}
	}
	verifyAgainstModel(t, db, model, 600)
}

func TestSetShapeSizeRatio(t *testing.T) {
	db, _ := testDB(t, nil)
	if err := db.SetShape(nil, 8); err != nil {
		t.Fatal(err)
	}
	if _, ratio := db.Shape(); ratio != 8 {
		t.Fatalf("ratio %d", ratio)
	}
	if err := db.SetShape(nil, 1); err == nil {
		t.Error("ratio 1 must be rejected")
	}
	// Data still correct after a shape change mid-stream.
	model := applyRandomWorkload(t, db, 62, 2000, 300)
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 300)
}

func TestSetShapeOnClosedDB(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Close()
	if err := db.SetShape(compaction.Leveling{}, 0); err != ErrClosed {
		t.Errorf("closed: %v", err)
	}
}

func TestSetShapeUnderLoad(t *testing.T) {
	// Flip shapes while writing; correctness must hold throughout.
	db, _ := testDB(t, nil)
	model := map[string]string{}
	shapes := []compaction.Layout{
		compaction.Tiering{K: 3}, compaction.Leveling{},
		compaction.LazyLeveling{K: 3}, compaction.TieredFirst{K0: 4},
	}
	for round, layout := range shapes {
		if err := db.SetShape(layout, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 800; i++ {
			k := fmt.Sprintf("key-%04d", (round*137+i)%900)
			v := fmt.Sprintf("r%d-%d", round, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	db.Flush()
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 900)
}

// TestPerLevelLayoutEndToEnd runs the fully general per-level run-cap
// layout (the LSM-Bush/Wacky continuum point of §2.3.1) through a real
// workload and checks both correctness and that each governed level
// respects its configured run capacity at quiescence.
func TestPerLevelLayoutEndToEnd(t *testing.T) {
	layout := compaction.PerLevel{Caps: []int{5, 3, 2, 1}}
	db, _ := testDB(t, func(o *Options) { o.Layout = layout })
	model := applyRandomWorkload(t, db, 77, 5000, 700)
	db.Flush()
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 700)

	ts := db.TreeStats()
	for lvl, l := range ts.Levels[:len(ts.Levels)-1] {
		cap := layout.RunCapacity(lvl, db.opts.NumLevels)
		if l.Runs > cap {
			t.Errorf("L%d holds %d runs, cap %d", lvl, l.Runs, cap)
		}
	}
}

// TestStrategyDrivesEngine wires a parsed textual strategy into engine
// options — the Compactionary round trip at system level.
func TestStrategyDrivesEngine(t *testing.T) {
	s, err := compaction.ParseStrategy("lazy-leveling(3)/partial/tombstone-density")
	if err != nil {
		t.Fatal(err)
	}
	db, _ := testDB(t, func(o *Options) {
		o.Layout = s.Layout
		o.Granularity = s.Granularity
		o.MovePolicy = s.MovePolicy
	})
	model := applyRandomWorkload(t, db, 78, 3000, 500)
	db.WaitIdle()
	verifyAgainstModel(t, db, model, 500)
	if name, _ := db.Shape(); name != "lazy-leveling(3)" {
		t.Errorf("shape %q", name)
	}
}
