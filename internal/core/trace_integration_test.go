package core

import (
	"fmt"
	"testing"

	"lsmlab/internal/trace"
)

// traceTestDB opens a DB with an attached tracer that retains every
// span, no block cache (every read hits disk), and no filters (every
// run is probed), so lookups produce fully annotated spans.
func traceTestDB(t *testing.T, mutate func(*Options)) (*DB, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{SampleEvery: 1, RingSize: 1024, Seed: 42})
	db, _ := testDB(t, func(o *Options) {
		o.Tracer = tr
		o.CacheBytes = 0
		o.FilterMode = FilterNone
		if mutate != nil {
			mutate(o)
		}
	})
	return db, tr
}

// lastSpan returns the most recent retained span for op.
func lastSpan(t *testing.T, tr *trace.Tracer, op string) trace.Span {
	t.Helper()
	spans := tr.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Op == op {
			return spans[i]
		}
	}
	t.Fatalf("no %q span among %d retained", op, len(spans))
	return trace.Span{}
}

// TestTracedGetAnnotatesAccessPath forces a multi-run lookup with a
// cold cache and checks that the span records the runs probed, the
// uncached block reads, and a timed search stage — the slow-Get shape
// the /traces endpoint serves.
func TestTracedGetAnnotatesAccessPath(t *testing.T) {
	db, tr := traceTestDB(t, nil)
	// Two flushed L0 runs with overlapping key ranges; the probed key
	// lives only in the older run but inside the newer run's fence
	// range, so the lookup must read blocks from both.
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte("gen1"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k-000"), []byte("gen2"))
	db.Put([]byte("k-049"), []byte("gen2"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	if v, err := db.Get([]byte("k-010")); err != nil || string(v) != "gen1" {
		t.Fatalf("get: %q %v", v, err)
	}
	sp := lastSpan(t, tr, trace.OpGet)
	if sp.Runs < 2 {
		t.Fatalf("multi-run lookup probed %d runs, want >= 2", sp.Runs)
	}
	if sp.BlockReads == 0 || sp.BlockReadsCached != 0 {
		t.Fatalf("cold-cache lookup: reads=%d cached=%d", sp.BlockReads, sp.BlockReadsCached)
	}
	stages := sp.Stages()
	if len(stages) == 0 || stages[0].Name != "search" {
		t.Fatalf("stages = %v, want leading search stage", stages)
	}
	if sp.DurNs <= 0 {
		t.Fatalf("span duration not stamped: %+v", sp)
	}
}

// TestTracedGetCountsFilterOutcomes checks filter probes and negatives
// reach the span when filters are enabled.
func TestTracedGetCountsFilterOutcomes(t *testing.T) {
	db, tr := traceTestDB(t, func(o *Options) {
		o.FilterMode = FilterUniform
		o.BitsPerKey = 10
	})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte("v"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// In-range absent key: fence pointers admit the file, so the filter
	// gets probed and answers negative.
	if _, err := db.Get([]byte("k-025x")); err != ErrNotFound {
		t.Fatalf("get absent: %v", err)
	}
	sp := lastSpan(t, tr, trace.OpGet)
	if sp.FilterProbes == 0 {
		t.Fatalf("filtered lookup recorded no probes: %+v", sp)
	}
	if sp.FilterNegatives == 0 {
		t.Fatalf("absent key should hit a filter negative: %+v", sp)
	}
}

// TestTracedApplyRecordsCommitStages checks the write span carries the
// pipeline stages and the commit-group size.
func TestTracedApplyRecordsCommitStages(t *testing.T) {
	db, tr := traceTestDB(t, nil)
	if err := db.Put([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	sp := lastSpan(t, tr, trace.OpPut)
	if sp.Batches < 1 {
		t.Fatalf("group size not stamped: %+v", sp)
	}
	if sp.Entries != 1 || sp.Bytes != 2 {
		t.Fatalf("entries/bytes = %d/%d", sp.Entries, sp.Bytes)
	}
	names := map[string]bool{}
	for _, st := range sp.Stages() {
		names[st.Name] = true
	}
	for _, want := range []string{"commit", "apply", "publish"} {
		if !names[want] {
			t.Fatalf("missing stage %q in %v", want, sp.Stages())
		}
	}

	// A multi-op batch spans as "batch".
	var b Batch
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if sp := lastSpan(t, tr, trace.OpBatch); sp.Entries != 2 {
		t.Fatalf("batch span entries = %d", sp.Entries)
	}
}

// TestTracedScanFlushCompaction covers the remaining span sources.
func TestTracedScanFlushCompaction(t *testing.T) {
	db, tr := traceTestDB(t, nil)
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte("v"))
	}
	if _, err := db.Scan([]byte("k-000"), []byte("k-010"), 0); err != nil {
		t.Fatal(err)
	}
	if sp := lastSpan(t, tr, trace.OpScan); sp.Entries != 10 {
		t.Fatalf("scan span entries = %d, want 10", sp.Entries)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if sp := lastSpan(t, tr, trace.OpFlush); sp.Bytes == 0 {
		t.Fatalf("flush span bytes = 0: %+v", sp)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	lastSpan(t, tr, trace.OpCompaction) // must exist
}

// TestTracedIDRetention checks wire-propagated ids force retention even
// when sampling would drop the span.
func TestTracedIDRetention(t *testing.T) {
	tr := trace.New(trace.Options{SampleEvery: 1 << 30, RingSize: 64, Seed: 42})
	db, _ := testDB(t, func(o *Options) { o.Tracer = tr })
	if err := db.Put([]byte("k"), []byte("v")); err != nil { // untraced: dropped
		t.Fatal(err)
	}
	if err := db.ApplyTraced(batchOf("k2", "v2"), 0xfeed); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetTraced([]byte("k"), 0xbeef); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ScanTraced(nil, nil, 1, 0xcafe); err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]bool{}
	for _, sp := range tr.Spans() {
		ids[sp.TraceID] = true
	}
	for _, want := range []uint64{0xfeed, 0xbeef, 0xcafe} {
		if !ids[want] {
			t.Fatalf("wire id %#x not retained; ids=%v", want, ids)
		}
	}
	if len(ids) != 3 {
		t.Fatalf("untraced ops leaked into ring: %v", ids)
	}
}

func batchOf(k, v string) *Batch {
	var b Batch
	b.Put([]byte(k), []byte(v))
	return &b
}

// TestUntracedPathsUnchanged pins the nil-tracer behavior: no spans, no
// accessor surprises.
func TestUntracedPathsUnchanged(t *testing.T) {
	db, _ := testDB(t, nil)
	if db.Tracer() != nil {
		t.Fatal("tracer should default to nil")
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.GetTraced([]byte("k"), 7); err != nil || string(v) != "v" {
		t.Fatalf("GetTraced without tracer: %q %v", v, err)
	}
	if err := db.ApplyTraced(batchOf("k2", "v2"), 7); err != nil {
		t.Fatalf("ApplyTraced without tracer: %v", err)
	}
	if _, err := db.ScanTraced(nil, nil, 0, 7); err != nil {
		t.Fatalf("ScanTraced without tracer: %v", err)
	}
}
