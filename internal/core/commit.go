package core

import (
	"sync"

	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/wal"
)

// This file implements the leader-based group-commit pipeline (the
// RocksDB write-group / Pebble commit-pipeline design, §2.1.1 A).
// Concurrent Apply callers enqueue commit requests; one caller — the
// leader — claims the whole queue as a group, assigns the group a
// contiguous sequence-number range, writes every batch's WAL frame in
// one buffered append, and issues a single Sync for the group. The
// members then insert into the memtable concurrently (the memtables
// carry their own locks), and a publish stage advances the visibleSeq
// watermark in commit order so readers and snapshots never observe a
// sequence-number hole.
//
// Lock order: db.mu → db.walMu → commit.mu / commit.pubMu (the two
// pipeline mutexes are leaves and never held together with each other).

// commitRequest is one Apply call's journey through the pipeline.
type commitRequest struct {
	userOps []wal.Op // the caller's original ops (user-size accounting)
	ops     []wal.Op // after value-log diversion (== userOps otherwise)

	// Filled by the leader while holding db.mu:
	mem        *memWrapper // the buffer this batch applies to
	base, last kv.SeqNum   // the batch's assigned sequence range
	registered bool        // sequence assigned; must flow through publish
	groupN     int32       // size of the commit group this batch joined
	stallNs    int64       // leader stall time spent on the group's behalf

	err error // commit failure, delivered to the caller

	// wake is closed to release a waiting follower, either because its
	// group's WAL stage finished or because it was promoted to leader
	// (isLeader). Allocated lazily: a request that leads from the start
	// never waits.
	wake     chan struct{}
	isLeader bool

	// donePub is closed by whichever publisher sweeps this request past
	// the watermark. A targeted close wakes exactly one waiter — a shared
	// condition variable here would stampede the whole group on every
	// advance. Allocated outside the pipeline locks by Apply.
	donePub chan struct{}

	// Publish state, guarded by commitPipeline.pubMu.
	applied   bool // memtable insert done (or skipped on error)
	published bool // visibleSeq has advanced past last
}

// commitPipeline serializes group formation and ordered publication.
type commitPipeline struct {
	mu     sync.Mutex
	queue  []*commitRequest // waiting to be claimed by a leader
	active bool             // a leader currently owns the pipeline

	pubMu   sync.Mutex
	pending []*commitRequest // registered requests in sequence order
}

func (c *commitPipeline) init() {}

// enqueue adds req to the queue and reports whether the caller must
// lead. Leadership is granted to the first writer to arrive while the
// pipeline is idle; everyone else waits to be woken.
func (c *commitPipeline) enqueue(req *commitRequest) (lead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue = append(c.queue, req)
	if !c.active {
		c.active = true
		return true
	}
	req.wake = make(chan struct{})
	return false
}

// claim takes the entire queue as the leader's commit group. The
// leader's own request is always queue[0].
func (c *commitPipeline) claim() []*commitRequest {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.queue
	c.queue = nil
	return g
}

// handoff ends the current leadership: if writers queued up meanwhile,
// the head of the queue is promoted to lead the next group; otherwise
// the pipeline goes idle.
func (c *commitPipeline) handoff() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) > 0 {
		next := c.queue[0]
		next.isLeader = true
		close(next.wake)
		return
	}
	c.active = false
}

// register appends the group to the publish queue in sequence order.
// Called by the leader with db.mu held, which orders groups globally.
func (c *commitPipeline) register(group []*commitRequest) {
	c.pubMu.Lock()
	for _, r := range group {
		r.registered = true
		c.pending = append(c.pending, r)
	}
	c.pubMu.Unlock()
}

// publish marks req applied, advances visibleSeq over the contiguous
// prefix of applied requests (commit order — never past a hole), and
// blocks until req itself is published. Every registered request must
// pass through here exactly once, errors included, or the watermark
// would stall.
func (c *commitPipeline) publish(db *DB, req *commitRequest) {
	c.pubMu.Lock()
	req.applied = true
	for len(c.pending) > 0 && c.pending[0].applied {
		r := c.pending[0]
		c.pending = c.pending[1:]
		db.visibleSeq.Store(uint64(r.last))
		r.published = true
		close(r.donePub)
	}
	published := req.published
	c.pubMu.Unlock()
	if !published {
		// A later publisher sweeps this request once the requests ahead
		// of it have applied; donePub may already be closed by the time
		// we get here, in which case the receive returns immediately.
		<-req.donePub
	}
}

// commitLead runs the leader stages for the group containing self:
//
//  1. Under db.mu: wait for room (write stalls), surface background
//     errors, claim the group, assign its sequence range, pin the
//     target memtable, and register the group for ordered publish.
//  2. Under db.walMu (acquired before db.mu is released, so a WAL
//     rotation can never slip between capture and append): write every
//     batch's frame in one buffered append and issue one Sync.
//  3. Hand leadership to the next queued writer, then wake the group;
//     each member applies its own batch to the memtable concurrently.
func (db *DB) commitLead(self *commitRequest) {
	db.mu.Lock()
	stallNs, err := db.makeRoomLocked()
	if err != nil {
		group := db.commit.claim()
		db.mu.Unlock()
		for _, r := range group {
			r.stallNs = stallNs
		}
		db.commitFail(group, self, err)
		return
	}
	// Only a degraded engine refuses writes. A transient background
	// error (bgErr set, degraded not) is being retried with backoff and
	// must not poison the write path — that was the old behavior this
	// degradation story replaces.
	if err := db.degradedErrLocked(); err != nil {
		group := db.commit.claim()
		db.mu.Unlock()
		for _, r := range group {
			r.stallNs = stallNs
		}
		db.commitFail(group, self, err)
		return
	}
	// Claim after the stall clears: batches that queued while the leader
	// was blocked join this group, so a stall drains in one commit.
	group := db.commit.claim()
	db.walMu.Lock()
	mem := db.mem
	w := db.wal
	var total uint64
	for _, r := range group {
		total += uint64(len(r.ops))
	}
	last := db.lastSeq.Add(total)
	base := kv.SeqNum(last - total + 1)
	for _, r := range group {
		r.mem = mem
		r.base = base
		r.last = base + kv.SeqNum(len(r.ops)) - 1
		base = r.last + 1
		r.groupN = int32(len(group))
		r.stallNs = stallNs
	}
	// Pin the buffer against flushing until every member's insert lands
	// (doFlush waits on this group).
	mem.writers.Add(len(group))
	db.commit.register(group)
	db.mu.Unlock()

	var werr error
	if !db.opts.DisableWAL {
		batches := make([]*wal.Batch, len(group))
		for i, r := range group {
			batches[i] = &wal.Batch{Seq: r.base, Ops: r.ops}
		}
		n, err := w.AppendGroup(batches)
		db.m.WALBytes.Add(int64(n))
		werr = err
		if werr == nil && db.opts.SyncWAL {
			werr = w.Sync()
			if werr == nil {
				db.m.WALSyncs.Add(1)
				db.m.WALSyncsSaved.Add(int64(len(group) - 1))
			}
		}
	}
	db.walMu.Unlock()

	db.m.CommitGroups.Add(1)
	db.m.CommitBatches.Add(int64(len(group)))
	db.m.CommitGroupSize.RecordNs(int64(len(group)))
	if len(group) > 1 {
		db.emit(events.Event{Type: events.GroupCommit, Batches: len(group),
			OutputBytes: int64(total)})
	}
	if werr != nil {
		// The sequence range was claimed and registered: the members skip
		// their memtable inserts but still publish, so visibleSeq advances
		// over the hole instead of wedging every later commit.
		for _, r := range group {
			r.err = werr
		}
	}

	db.commit.handoff()
	for _, r := range group {
		if r != self {
			close(r.wake)
		}
	}
}

// commitFail delivers err to a group that never reached sequence
// assignment (stall abort or background error) and releases leadership.
func (db *DB) commitFail(group []*commitRequest, self *commitRequest, err error) {
	for _, r := range group {
		r.err = err
	}
	db.commit.handoff()
	for _, r := range group {
		if r != self {
			close(r.wake)
		}
	}
}

// applyToMem inserts one request's operations into its pinned memtable.
// Runs concurrently across group members; the memtables are internally
// synchronized, and entries stay invisible until publish advances
// visibleSeq past them.
func (db *DB) applyToMem(req *commitRequest) {
	seq := req.base
	var puts, deletes, bytes int64
	for i := range req.ops {
		op := req.ops[i]
		switch op.Kind {
		case kv.KindRangeDelete:
			// Copied out of the batch: the tombstone outlives Apply while
			// the batch's arena may be reset and reused by the caller.
			req.mem.addRangeDel(kv.RangeTombstone{Start: cp(op.Key), End: cp(op.Value), Seq: seq})
			deletes++
		case kv.KindDelete, kv.KindSingleDelete:
			req.mem.mt.Add(seq, op.Kind, op.Key, op.Value)
			deletes++
		default:
			req.mem.mt.Add(seq, op.Kind, op.Key, op.Value)
			puts++
		}
		// Ingested bytes are accounted at user-visible size: for
		// separated values, the value bytes count here (they were
		// ingested) even though the tree only carries a pointer.
		bytes += int64(len(req.userOps[i].Key) + len(req.userOps[i].Value))
		seq++
	}
	// One atomic add per counter per batch: per-op adds ping-pong the
	// counter cache lines across concurrently applying members.
	if puts > 0 {
		db.m.Puts.Add(puts)
	}
	if deletes > 0 {
		db.m.Deletes.Add(deletes)
	}
	db.m.BytesIngested.Add(bytes)
}
