package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"lsmlab/internal/events"
	"lsmlab/internal/manifest"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// TestScrubCleanTree checks that a healthy tree scrubs clean and the
// report counts what was actually verified.
func TestScrubCleanTree(t *testing.T) {
	base := vfs.NewMem()
	opts := DefaultOptions(base, "db")
	opts.BufferBytes = 4 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 40; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean tree produced findings: %s", rep)
	}
	if rep.Tables == 0 || rep.TableBytes == 0 {
		t.Fatalf("scrub verified nothing: %s", rep)
	}
	if !rep.ManifestOK {
		t.Fatalf("manifest flagged on a healthy tree: %s", rep)
	}
}

// TestScrubDetectsAndQuarantinesBitFlip is the acceptance scenario: a
// bit flipped at rest in a live sstable must be detected by a scrub,
// the table quarantined (dropped from the version, renamed aside), and
// reads must keep working — returning NotFound for the lost keys, never
// crashing or serving the damage.
func TestScrubDetectsAndQuarantinesBitFlip(t *testing.T) {
	ring := events.NewRing(256)
	base := vfs.NewMem()
	ffs := faultfs.New(base, 42)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.EventListener = ring
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 40; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()

	// Flip one bit inside the first data block of a live table.
	live := db.Version().LiveFileNums()
	if len(live) == 0 {
		t.Fatal("no live tables after flush")
	}
	var victim uint64
	for num := range live {
		victim = num
		break
	}
	name := vfs.Join("db", manifest.FileName(victim))
	if err := ffs.FlipBit(name, 8*64+3); err != nil {
		t.Fatal(err)
	}

	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1: %s", len(rep.Findings), rep)
	}
	f := rep.Findings[0]
	if f.Path != manifest.FileName(victim) || !f.Quarantined {
		t.Fatalf("wrong finding: %+v", f)
	}
	if !base.Exists(name + ".corrupt") {
		t.Fatal("quarantined table not renamed aside")
	}
	if base.Exists(name) {
		t.Fatal("corrupt table still in the live namespace")
	}

	// The version no longer references the table, durably.
	if db.Version().LiveFileNums()[victim] {
		t.Fatal("quarantined table still live in the version")
	}
	if err := db.Version().Check(); err != nil {
		t.Fatalf("version inconsistent after quarantine: %v", err)
	}

	// Reads never crash: each key either resolves or is cleanly gone.
	for i := 0; i < 40; i++ {
		_, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("get k%03d after quarantine: %v", i, err)
		}
	}

	// Surfaces: metrics, stats line, scrub event.
	if m := db.Metrics(); m.ScrubCorruptions != 1 || m.ScrubbedTables == 0 {
		t.Fatalf("scrub metrics off: scrubbed=%d corruptions=%d", m.ScrubbedTables, m.ScrubCorruptions)
	}
	if stats := db.FormatStats(false); !strings.Contains(stats, "scrub_corruptions=1") {
		t.Fatalf("FormatStats misses scrub results:\n%s", stats)
	}
	var scrubEvents int
	for _, e := range ring.Events() {
		if e.Type == events.ScrubEnd {
			scrubEvents++
			if e.InputFiles != 1 {
				t.Fatalf("ScrubEnd findings = %d, want 1", e.InputFiles)
			}
		}
	}
	if scrubEvents != 1 {
		t.Fatalf("ScrubEnd events = %d, want 1", scrubEvents)
	}

	// A second scrub over the quarantined tree is clean.
	rep2, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Findings) != 0 {
		t.Fatalf("second scrub still finds damage: %s", rep2)
	}

	// Writes still work (scrub must not degrade the engine), and a
	// restart keeps the quarantined file but never resurrects it.
	if err := db.Put([]byte("post-scrub"), []byte("v")); err != nil {
		t.Fatalf("put after quarantine: %v", err)
	}
}

// TestScrubSurvivesRestart checks the quarantine is durable: after a
// reopen the dropped table stays dropped, the .corrupt file survives
// the orphan sweep, and the store opens without error.
func TestScrubSurvivesRestart(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 7)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	var victim uint64
	for num := range db.Version().LiveFileNums() {
		victim = num
		break
	}
	if err := ffs.FlipBit(vfs.Join("db", manifest.FileName(victim)), 8*64); err != nil {
		t.Fatal(err)
	}
	if rep, err := db.Scrub(); err != nil || len(rep.Findings) != 1 {
		t.Fatalf("scrub: %v %v", rep, err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close after scrub: %v", err)
	}

	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Version().LiveFileNums()[victim] {
		t.Fatal("quarantined table resurrected by recovery")
	}
	if !base.Exists(vfs.Join("db", manifest.FileName(victim)+".corrupt")) {
		t.Fatal("quarantine evidence deleted by the orphan sweep")
	}
	for i := 0; i < 40; i++ {
		_, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("get after restart: %v", err)
		}
	}
}

// TestScrubDetectsVlogDamage checks the value-log leg: structural
// damage (a torn record) is reported, attributed to the segment, and
// NOT quarantined — pointers into the log cannot be re-homed.
func TestScrubDetectsVlogDamage(t *testing.T) {
	base := vfs.NewMem()
	opts := DefaultOptions(base, "db")
	opts.BufferBytes = 4 << 10
	opts.ValueSeparationThreshold = 64
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.vlog.SetMaxFileSize(1 << 10)
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail off a sealed segment.
	segs := db.vlog.SegmentNums()
	if len(segs) < 2 {
		t.Fatalf("expected rotated segments, got %v", segs)
	}
	name := vfs.Join("db", manifest.VLogName(segs[0]))
	f, err := base.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	buf := make([]byte, size-3)
	f.ReadAt(buf, 0)
	f.Close()
	nf, err := base.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	nf.Write(buf)
	nf.Close()

	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, fd := range rep.Findings {
		if fd.Path == manifest.VLogName(segs[0]) {
			found = true
			if fd.Quarantined {
				t.Fatal("vlog segments must not be quarantined")
			}
		}
	}
	if !found {
		t.Fatalf("torn vlog segment not reported: %s", rep)
	}
	if rep.VlogSegments != len(segs) {
		t.Fatalf("vlog segments scanned = %d, want %d", rep.VlogSegments, len(segs))
	}
}

// TestENOSPCMidCompactionDegrades fills the fault budget so a
// background compaction runs out of space partway: the engine must
// degrade with the no-space classification, the version set must stay
// consistent (the half-written outputs never installed), reads keep
// serving, and a restart over a healthy device sweeps the partial
// outputs and loses nothing.
func TestENOSPCMidCompactionDegrades(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 11)
	opts := DefaultOptions(ffs, "db")
	opts.BufferBytes = 4 << 10
	opts.Workers = 1
	opts.MaxBackgroundRetries = 1
	opts.Paranoid = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	model := map[string]bool{}
	put := func(round, i int) {
		k := fmt.Sprintf("r%d-k%03d", round, i)
		if err := db.Put([]byte(k), make([]byte, 100)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		model[k] = true
	}
	// Three clean flushes stack three L0 runs (TieredFirst K0=4).
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			put(round, i)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()

	// Fourth buffer is written durably first (WAL writes must not eat
	// the budget), then the device runs nearly full: the flush (~3 KiB)
	// fits, the 4-run compaction (~12 KiB) cannot.
	for i := 0; i < 20; i++ {
		put(3, i)
	}
	ffs.SetWriteBudget(8 << 10)
	if err := db.Flush(); err == nil {
		t.Fatal("flush cycle on a nearly-full device must surface an error")
	}
	waitDegraded(t, db)
	h := db.Health()
	if h.Kind != "no-space" {
		t.Fatalf("kind = %s, want no-space (health %+v)", h.Kind, h)
	}
	if h.Op != "compaction" {
		t.Fatalf("op = %s, want compaction (health %+v)", h.Op, h)
	}

	// Version consistency: invariants hold and every live file exists.
	v := db.Version()
	if err := v.Check(); err != nil {
		t.Fatalf("version inconsistent after ENOSPC: %v", err)
	}
	for num := range v.LiveFileNums() {
		if !base.Exists(vfs.Join("db", manifest.FileName(num))) {
			t.Fatalf("live table %06d.sst missing after failed compaction", num)
		}
	}
	// Reads keep serving everything that was acknowledged.
	for k := range model {
		if _, err := db.Get([]byte(k)); err != nil {
			t.Fatalf("key %s unreadable while degraded: %v", k, err)
		}
	}
	db.Close()

	// Restart on a healthy device: partial outputs swept, data intact.
	ffs.SetWriteBudget(-1)
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k := range model {
		if _, err := db2.Get([]byte(k)); err != nil {
			t.Fatalf("key %s lost across ENOSPC + recovery: %v", k, err)
		}
	}
	live := db2.Version().LiveFileNums()
	names, _ := base.List("db")
	for _, name := range names {
		if vfs.HasSuffix(name, ".sst") {
			var num uint64
			fmt.Sscanf(name, "%06d.sst", &num)
			if !live[num] {
				t.Errorf("orphan table %s survived recovery", name)
			}
		}
	}
}
