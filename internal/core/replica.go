package core

import (
	"errors"

	"lsmlab/internal/vfs"
	"lsmlab/internal/wal"
)

// This file is the engine side of replication (internal/replica): a
// follower opens its store with Options.Replica set, which refuses
// external writes, and the replica.Receiver applies shipped WAL
// batches through ReplicaApply — the same commit/publish pipeline as
// leader writes, so the follower's visibleSeq watermark, snapshots,
// and cross-shard scan semantics hold unchanged. The follower keeps
// its own local sequence space (its seqnums need not mirror the
// leader's); what ties the two stores together is apply ORDER, which
// the shipped stream preserves, plus the applied-leader-seq watermark
// the receiver tracks on top.

// ErrReplica is returned by writes on a store opened as a read-only
// replica. Unlike ErrDegraded it does not indicate a fault: the store
// is healthy, writes just belong on the leader.
var ErrReplica = errors.New("lsm: replica is read-only (writes go to the leader)")

// ReplicaApply applies one shipped WAL batch through the commit
// pipeline: WAL append (follower durability), memtable insert, and
// ordered publish, exactly like a leader-side Apply. The receiver is
// the sole caller and applies batches serially in shipped order, which
// is what makes the follower an order-faithful copy of the leader.
// Only a store opened with Options.Replica accepts it.
func (db *DB) ReplicaApply(ops []wal.Op) error {
	if !db.opts.Replica {
		return errors.New("lsm: ReplicaApply on a non-replica store")
	}
	if len(ops) == 0 {
		return nil
	}
	return db.applyOps(ops)
}

// ReplicaRepair is the anti-entropy write path: Merkle repair re-ships
// divergent ranges as ordinary batches with fresh local sequence
// numbers (they carry the newest visible values, so recency stays
// correct). It bypasses the external-write refusal but not the
// degradation check. Like ReplicaApply, only the replica machinery may
// call it.
func (db *DB) ReplicaRepair(b *Batch) error {
	if !db.opts.Replica {
		return errors.New("lsm: ReplicaRepair on a non-replica store")
	}
	if len(b.ops) == 0 {
		return nil
	}
	return db.applyOps(b.ops)
}

// applyOps runs ops through the commit pipeline — the shared tail of
// apply() without tracing or value-log diversion (shipped batches are
// already post-diversion; see the replication restriction on value
// separation in internal/replica).
func (db *DB) applyOps(ops []wal.Op) error {
	if err := db.degradedErr(); err != nil {
		return err
	}
	req := &commitRequest{userOps: ops, ops: ops, donePub: make(chan struct{})}
	if db.commit.enqueue(req) {
		db.commitLead(req)
	} else {
		<-req.wake
		if req.isLeader {
			db.commitLead(req)
		}
	}
	if !req.registered {
		return req.err
	}
	if req.err == nil {
		db.applyToMem(req)
	}
	req.mem.writers.Done()
	db.commit.publish(db, req)
	if req.err != nil {
		return req.err
	}
	if req.mem.mt.ApproximateBytes() >= db.opts.BufferBytes {
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.mem == req.mem && db.mem.mt.ApproximateBytes() >= db.opts.BufferBytes &&
			len(db.imm) < db.opts.MaxImmutableBuffers {
			return db.rotateMemtableLocked()
		}
	}
	return nil
}

// SyncWAL forces the active WAL segment to stable storage. The
// receiver calls it before persisting its replication watermark, so a
// persisted watermark never claims durability the log does not have.
func (db *DB) SyncWAL() error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.walFile == nil {
		return nil
	}
	err := db.walFile.Sync()
	if err == nil {
		db.m.WALSyncs.Add(1)
	}
	return err
}

// FSDir exposes the store's filesystem and directory — the WAL shipper
// tails the directory with a wal.Cursor, and the receiver keeps its
// replication-state file next to the store.
func (db *DB) FSDir() (vfs.FS, string) { return db.fs, db.dir }

// IsReplica reports whether the store was opened as a read-only
// replica.
func (db *DB) IsReplica() bool { return db.opts.Replica }
