// Package core implements the LSM storage engine: the write path
// (WAL → memtable → flush), the read path (memtables → runs, guided by
// fence pointers and Bloom filters), background compactions spanning
// the full compaction design space, snapshots, iterators, delete
// persistence, and optional WiscKey-style key–value separation.
//
// Every design decision named by the tutorial is an option on this one
// engine, so experiments compare layouts and policies on identical code
// paths.
package core

import (
	"time"

	"lsmlab/internal/compaction"
	"lsmlab/internal/events"
	"lsmlab/internal/memtable"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
)

// FilterMode selects how filter memory is assigned to runs.
type FilterMode int

const (
	// FilterUniform gives every run the same bits per key
	// (BitsPerKey) — the untuned baseline.
	FilterUniform FilterMode = iota
	// FilterMonkey divides a total budget (FilterBudgetBits) optimally
	// across levels: shallow runs get more bits per key, the largest
	// level may get none (Monkey, tutorial §2.1.3).
	FilterMonkey
	// FilterNone disables Bloom filters.
	FilterNone
)

// Options configures a DB. The zero value is not usable; call
// DefaultOptions and override.
type Options struct {
	// FS is the filesystem; tests and experiments use vfs.MemFS (often
	// wrapped in a CountingFS), tools use vfs.OSFS.
	FS vfs.FS
	// Path is the database directory.
	Path string

	// NumLevels is the number of on-disk levels.
	NumLevels int
	// SizeRatio is T, the growth factor between level capacities.
	SizeRatio int
	// BaseLevelBytes is L1's capacity; 0 derives BufferBytes*SizeRatio.
	BaseLevelBytes uint64

	// MemtableKind selects the buffer implementation (§2.2.1).
	MemtableKind memtable.Kind
	// BufferBytes is the memtable size that triggers a flush.
	BufferBytes int
	// MaxImmutableBuffers is how many full buffers may queue before
	// writers stall (§2.2.1: more buffers absorb ingestion bursts).
	MaxImmutableBuffers int

	// Layout, Granularity, MovePolicy are compaction primitives (ii),
	// (iii), (iv) (§2.2.4).
	Layout      compaction.Layout
	Granularity compaction.Granularity
	MovePolicy  compaction.MovePolicy
	// TargetFileSize bounds output files of flushes and compactions.
	TargetFileSize uint64

	// FilterMode, BitsPerKey, FilterBudgetBits configure Bloom filters.
	FilterMode       FilterMode
	BitsPerKey       float64
	FilterBudgetBits int64

	// BlockSize is the SSTable data block size.
	BlockSize int
	// CacheBytes is the shared block cache capacity; 0 disables it.
	CacheBytes int
	// PrefetchAfterCompaction enables the Leaper-style re-warming of the
	// block cache with output blocks of a compaction whose inputs were
	// hot (§2.1.3, [128]).
	PrefetchAfterCompaction bool

	// DisableWAL trades durability for ingest speed (bulk loading).
	DisableWAL bool
	// SyncWAL makes every write batch durable before returning.
	SyncWAL bool

	// Workers is the number of background threads executing flushes and
	// compactions (§2.2.5).
	Workers int
	// StallL0Runs stalls writers when level 0 accumulates this many
	// runs (0 disables; RocksDB's level0_stop_writes_trigger).
	StallL0Runs int
	// StallTimeout bounds how long one write may block inside a write
	// stall (makeRoomLocked) before aborting with a typed error
	// matching ErrBackpressure. 0 (the default) keeps the classic
	// behavior — block until a flush or compaction makes room. Serving
	// layers set it to convert unbounded stall latency into explicit
	// backpressure they can shed per tenant. Aborted writes fail before
	// sequence assignment and WAL append, so a backpressured batch is
	// never partially durable.
	StallTimeout time.Duration
	// CompactionBandwidthBytesPerSec throttles each compaction's writes
	// like SILK's I/O scheduler so flushes keep headroom (0 = unlimited;
	// §2.2.3, [16]). The limit is per concurrent compaction — modeling a
	// device whose aggregate bandwidth scales with queue depth, as SSD/
	// NVM parallelism does (§2.2.5). The throttle performs real sleeps
	// unless SleepFunc is injected.
	CompactionBandwidthBytesPerSec int64
	// SleepFunc, if set, replaces real sleeping for the bandwidth
	// throttle (experiments inject a virtual clock).
	SleepFunc func(d time.Duration)

	// TombstoneAgeThreshold enables Lethe/FADE timely deletion: any
	// file holding a tombstone older than this is compacted promptly,
	// bounding delete persistence latency (§2.3.3).
	TombstoneAgeThreshold time.Duration

	// ValueSeparationThreshold stores values at least this large in the
	// WiscKey value log, leaving only pointers in the tree (0 disables;
	// §2.2.2, [78]).
	ValueSeparationThreshold int

	// MergeOperator enables DB.Merge, the read-modify-write operation of
	// tutorial §2.2.6 (RocksDB's merge operator): operands are folded
	// into the base value lazily, at read or compaction time, so RMW
	// costs one blind write instead of a read-modify-write round trip.
	MergeOperator MergeOperator

	// EventListener, when non-nil, receives the engine's lifecycle
	// events (flushes, compactions, stalls, WAL rotations, vlog GC,
	// checkpoints). Listeners run synchronously on engine goroutines,
	// sometimes under internal locks: they must be fast, non-blocking,
	// and must not call back into the DB. Use events.NewRing for a
	// bounded in-memory log or events.Tee to fan out. Nil (the default)
	// keeps the hot paths free of any listener cost.
	EventListener events.Listener

	// Tracer, when non-nil, enables per-operation request tracing:
	// every Get/Apply/Scan and background flush/compaction is annotated
	// into a trace.Span (runs probed, filter outcomes, blocks read vs
	// cache-hit, stall and commit waits, value-log hops), and the
	// tracer's sampling/slow-op policy decides which spans its bounded
	// ring retains. Nil (the default) keeps the hot paths at a single
	// pointer compare with zero allocations.
	Tracer *trace.Tracer

	// RecordLatencies turns on the per-operation latency histograms
	// (DB.Latencies) even without an EventListener. Attaching a listener
	// implies it; with neither, Get/Put/Scan skip their clock reads
	// entirely so observability costs the hot paths nothing.
	RecordLatencies bool

	// DisableProfiler turns off the always-on workload profiler (the
	// sketch-based live workload characterization and per-level I/O
	// attribution behind DB.WorkloadProfile, /workload, and the
	// lsmlab_workload_*//lsmlab_level_* metric families). The profiler
	// samples one operation in eight into pre-allocated sketches, so its
	// steady-state cost is a striped atomic increment per op and zero
	// allocations; it stays on by default.
	DisableProfiler bool

	// ProfileWindowOps is the decay half-life of the workload profile,
	// in observed operations: after this many gets+puts+deletes+scans
	// the sketch generations rotate, and estimates cover the last one to
	// two half-lives. Default 1<<20. Experiments and tests shrink it to
	// track shifts quickly.
	ProfileWindowOps int

	// NowNs supplies time (injected for deterministic tests).
	NowNs func() int64

	// Replica opens the store as a read-only replication follower:
	// external writes (Put/Delete/Apply/Merge) fail with ErrReplica,
	// while the replica.Receiver applies shipped WAL batches through
	// ReplicaApply. Reads, scans, snapshots, health, stats, scrub, and
	// checkpoints all serve normally.
	Replica bool

	// MaxBackgroundRetries bounds how many consecutive failures of one
	// background job (a flush of one buffer, or compactions generally)
	// are retried — with capped exponential backoff — before the engine
	// degrades to read-only mode. Corruption errors skip retries and
	// degrade immediately. Default 5; negative degrades on the first
	// failure.
	MaxBackgroundRetries int

	// Paranoid re-validates version invariants after every structural
	// change.
	Paranoid bool
}

// DefaultOptions returns a production-shaped configuration: RocksDB-like
// hybrid layout (tiered L0, leveled deeper levels), 10x size ratio,
// skiplist buffer, uniform 10 bits/key filters, 8 MiB block cache.
func DefaultOptions(fs vfs.FS, path string) Options {
	return Options{
		FS:                   fs,
		Path:                 path,
		NumLevels:            5,
		SizeRatio:            10,
		MemtableKind:         memtable.KindSkipList,
		BufferBytes:          1 << 20,
		MaxImmutableBuffers:  2,
		Layout:               compaction.TieredFirst{K0: 4},
		Granularity:          compaction.GranularityPartial,
		MovePolicy:           compaction.PickMinOverlap,
		TargetFileSize:       2 << 20,
		FilterMode:           FilterUniform,
		BitsPerKey:           10,
		BlockSize:            4096,
		CacheBytes:           8 << 20,
		Workers:              1,
		StallL0Runs:          12,
		MaxBackgroundRetries: 5,
	}
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	d := DefaultOptions(o.FS, o.Path)
	if o.NumLevels <= 0 {
		o.NumLevels = d.NumLevels
	}
	if o.SizeRatio < 2 {
		o.SizeRatio = d.SizeRatio
	}
	if o.MemtableKind == "" {
		o.MemtableKind = d.MemtableKind
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = d.BufferBytes
	}
	if o.MaxImmutableBuffers <= 0 {
		o.MaxImmutableBuffers = d.MaxImmutableBuffers
	}
	if o.Layout == nil {
		o.Layout = d.Layout
	}
	if o.TargetFileSize == 0 {
		o.TargetFileSize = d.TargetFileSize
	}
	if o.BitsPerKey == 0 && o.FilterMode == FilterUniform {
		o.BitsPerKey = d.BitsPerKey
	}
	if o.BlockSize <= 0 {
		o.BlockSize = d.BlockSize
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = uint64(o.BufferBytes) * uint64(o.SizeRatio)
	}
	if o.MaxBackgroundRetries == 0 {
		o.MaxBackgroundRetries = d.MaxBackgroundRetries
	}
	if o.ProfileWindowOps <= 0 {
		o.ProfileWindowOps = 1 << 20
	}
	if o.NowNs == nil {
		o.NowNs = func() int64 { return time.Now().UnixNano() }
	}
	return o
}
