package core

import (
	"testing"

	"lsmlab/internal/compaction"
	"lsmlab/internal/memtable"
	"lsmlab/internal/vfs"
)

func TestWithDefaultsFillsZeroValues(t *testing.T) {
	o := Options{FS: vfs.NewMem(), Path: "x"}.withDefaults()
	if o.NumLevels <= 0 || o.SizeRatio < 2 || o.BufferBytes <= 0 ||
		o.MaxImmutableBuffers <= 0 || o.TargetFileSize == 0 ||
		o.BlockSize <= 0 || o.Workers <= 0 {
		t.Errorf("unfilled defaults: %+v", o)
	}
	if o.Layout == nil {
		t.Error("layout default")
	}
	if o.MemtableKind != memtable.KindSkipList {
		t.Errorf("memtable default %q", o.MemtableKind)
	}
	if o.BitsPerKey != 10 {
		t.Errorf("bits/key default %v", o.BitsPerKey)
	}
	if o.BaseLevelBytes != uint64(o.BufferBytes)*uint64(o.SizeRatio) {
		t.Errorf("base level bytes %d", o.BaseLevelBytes)
	}
	if o.NowNs == nil || o.NowNs() == 0 {
		t.Error("clock default")
	}
}

func TestWithDefaultsPreservesExplicitValues(t *testing.T) {
	in := Options{
		FS: vfs.NewMem(), Path: "x",
		NumLevels: 3, SizeRatio: 7, BufferBytes: 123456,
		MaxImmutableBuffers: 9, TargetFileSize: 777,
		Layout:    compaction.Tiering{K: 2},
		BlockSize: 512, Workers: 3, BaseLevelBytes: 999,
		MemtableKind: memtable.KindVector,
		FilterMode:   FilterNone,
	}
	o := in.withDefaults()
	if o.NumLevels != 3 || o.SizeRatio != 7 || o.BufferBytes != 123456 ||
		o.MaxImmutableBuffers != 9 || o.TargetFileSize != 777 ||
		o.BlockSize != 512 || o.Workers != 3 || o.BaseLevelBytes != 999 ||
		o.MemtableKind != memtable.KindVector {
		t.Errorf("explicit values overwritten: %+v", o)
	}
	if o.Layout.Name() != "tiering(2)" {
		t.Error("layout overwritten")
	}
	// FilterNone must not force BitsPerKey.
	if o.BitsPerKey != 0 {
		t.Errorf("FilterNone should leave BitsPerKey zero, got %v", o.BitsPerKey)
	}
}

func TestOpenRequiresFS(t *testing.T) {
	if _, err := Open(Options{Path: "x"}); err == nil {
		t.Fatal("nil FS accepted")
	}
}

func TestTreeStatsString(t *testing.T) {
	db, _ := testDB(t, nil)
	db.Put([]byte("k"), []byte("v"))
	db.Flush()
	s := db.TreeStats().String()
	for _, want := range []string{"memtable:", "L0:", "total:"} {
		if !containsStr(s, want) {
			t.Errorf("TreeStats string missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
