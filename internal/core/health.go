package core

import (
	"errors"
	"fmt"
	"syscall"

	"lsmlab/internal/events"
	"lsmlab/internal/manifest"
	"lsmlab/internal/sstable"
	"lsmlab/internal/vfs"
	"lsmlab/internal/wal"
	"lsmlab/internal/wisckey"
)

// This file is the engine's degradation story (DESIGN.md §2d). A
// background error — a flush or compaction that cannot complete — used
// to silently poison all future writes via bgErr, explained only at
// Close. Now errors are classified, transient ones are retried with
// capped backoff, and only persistent or unrecoverable failures move
// the engine into a sticky read-only degraded mode: writes fail fast
// with a typed error naming the root cause, reads keep serving from
// whatever state is already durable.

// ErrDegraded is the sentinel for the read-only degraded mode. Write
// errors returned while degraded satisfy errors.Is(err, ErrDegraded)
// and are (or wrap) a *DegradedError carrying the cause.
var ErrDegraded = errors.New("lsm: degraded to read-only mode")

// ErrorKind classifies a background error for the degradation policy.
type ErrorKind int

const (
	// KindTransient is a retryable I/O failure (the default class).
	KindTransient ErrorKind = iota
	// KindCorruption is a checksum or structural mismatch: retrying
	// cannot help, and continuing to write risks compounding damage.
	KindCorruption
	// KindNoSpace is a full device. Retries are allowed (compactions
	// and external cleanup can free space) but bounded.
	KindNoSpace
)

// String implements fmt.Stringer.
func (k ErrorKind) String() string {
	switch k {
	case KindCorruption:
		return "corruption"
	case KindNoSpace:
		return "no-space"
	default:
		return "transient"
	}
}

// classifyError maps an error from a background job onto the taxonomy.
func classifyError(err error) ErrorKind {
	switch {
	case errors.Is(err, sstable.ErrCorrupt),
		errors.Is(err, wal.ErrCorrupt),
		errors.Is(err, manifest.ErrCorrupt),
		errors.Is(err, wisckey.ErrCorrupt):
		return KindCorruption
	case errors.Is(err, vfs.ErrNoSpace), errors.Is(err, syscall.ENOSPC):
		return KindNoSpace
	default:
		return KindTransient
	}
}

// DegradedError is the typed error returned by writes while the engine
// is degraded. It unwraps to the root cause and matches ErrDegraded.
type DegradedError struct {
	Op    string    // background operation that failed ("flush", "compaction")
	Kind  ErrorKind // classification of the root cause
	Cause error     // the final error that triggered degradation
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("lsm: degraded to read-only mode (%s, %s): %v", e.Op, e.Kind, e.Cause)
}

// Unwrap returns the root cause.
func (e *DegradedError) Unwrap() error { return e.Cause }

// Is reports true for ErrDegraded, so errors.Is(err, ErrDegraded)
// identifies degraded-mode failures without unwrapping manually.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Health is a point-in-time summary of the engine's error state.
type Health struct {
	// Degraded reports the sticky read-only mode. When set, Op, Kind,
	// Cause, and SinceNs describe the transition.
	Degraded bool
	Op       string // failing background operation
	Kind     string // error class (transient/corruption/no-space)
	Cause    string // root-cause error text
	SinceNs  int64  // engine clock at the transition
	// BgErr is the first background error ever observed (empty if
	// none), surfaced here — and in FormatStats — immediately rather
	// than only at Close. A set BgErr with Degraded false means the
	// failure was transient and a retry succeeded.
	BgErr   string
	BgErrOp string // operation that produced BgErr
}

// Health returns the engine's current degradation state. It is safe to
// call concurrently with reads, writes, and background work.
func (db *DB) Health() Health {
	db.mu.Lock()
	defer db.mu.Unlock()
	h := Health{}
	if db.bgErr != nil {
		h.BgErr = db.bgErr.Error()
		h.BgErrOp = db.bgErrOp
	}
	if db.degraded != nil {
		h.Degraded = true
		h.Op = db.degraded.Op
		h.Kind = db.degraded.Kind.String()
		h.Cause = db.degraded.Cause.Error()
		h.SinceNs = db.degradedSince
	}
	return h
}

// setBgErrLocked records the first background error with its operation
// (the health/stats surface). Callers hold db.mu.
func (db *DB) setBgErrLocked(op string, err error) {
	if db.bgErr == nil {
		db.bgErr = err
		db.bgErrOp = op
	}
}

// degradeLocked performs the one-way transition into read-only mode.
// Sticky by design: the device is suspect, so only a restart against a
// healthy filesystem clears it. Callers hold db.mu.
func (db *DB) degradeLocked(op string, err error) {
	if db.degraded != nil {
		return
	}
	de := &DegradedError{Op: op, Kind: classifyError(err), Cause: err}
	db.degraded = de
	db.degradedSince = db.opts.NowNs()
	db.degradedFlag.Store(true)
	db.m.Degraded.Store(1)
	db.setBgErrLocked(op, err)
	db.emit(events.Event{Type: events.DegradedEnter, Path: op,
		Reason: de.Kind.String(), Err: err})
	// Wake stalled writers (they must fail fast now), parked workers,
	// and waitIdle callers (pending work will never drain).
	db.cond.Broadcast()
}

// degradedErrLocked returns the typed degradation error, or nil.
// Callers hold db.mu.
func (db *DB) degradedErrLocked() error {
	if db.degraded == nil {
		return nil
	}
	return db.degraded
}

// degradedErr is degradedErrLocked for callers not holding db.mu, with
// a lock-free fast path for the (overwhelmingly common) healthy case.
func (db *DB) degradedErr() error {
	if !db.degradedFlag.Load() {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.degradedErrLocked()
}

// noteBackgroundFailure applies the retry/degrade policy after one
// failed background job attempt: corruption degrades immediately;
// transient and out-of-space errors degrade once consecutive failures
// of the same job exceed Options.MaxBackgroundRetries (each retry
// having backed off in the worker loop). Callers hold db.mu and own
// the per-job consecutive-failure counter.
func (db *DB) noteBackgroundFailure(op string, failures int, err error) {
	db.m.BgRetries.Add(1)
	db.setBgErrLocked(op, err)
	if classifyError(err) == KindCorruption || failures > db.opts.MaxBackgroundRetries {
		db.degradeLocked(op, err)
	}
}
