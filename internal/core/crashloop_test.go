package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lsmlab/internal/vfs"
)

// TestCrashRecoveryLoop drives random operations through repeated
// "crashes" (reopen without Close): after every recovery, the store
// must agree exactly with a model map. This is the whole-engine
// durability property: WAL replay + manifest recovery + orphan sweep
// compose to lose nothing and resurrect nothing.
func TestCrashRecoveryLoop(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.BufferBytes = 4 << 10
	opts.TargetFileSize = 8 << 10
	opts.BaseLevelBytes = 16 << 10
	opts.NumLevels = 4
	opts.SizeRatio = 3
	opts.Paranoid = true

	r := rand.New(rand.NewSource(2026))
	model := map[string]string{}
	rangeDel := func(db *DB, lo, hi int) error {
		start, end := fmt.Sprintf("k%04d", lo), fmt.Sprintf("k%04d", hi)
		if err := db.DeleteRange([]byte(start), []byte(end)); err != nil {
			return err
		}
		for k := range model {
			if k >= start && k < end {
				delete(model, k)
			}
		}
		return nil
	}

	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 8
	for round := 0; round < rounds; round++ {
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("k%04d", r.Intn(600))
			switch r.Intn(12) {
			case 0:
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			case 1:
				lo := r.Intn(550)
				if err := rangeDel(db, lo, lo+r.Intn(40)+1); err != nil {
					t.Fatal(err)
				}
			default:
				v := fmt.Sprintf("r%d-%d", round, i)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
		// Crash: abandon the handle without closing. Background work may
		// be mid-flight; recovery must cope with whatever hit disk.
		switch round % 3 {
		case 0:
			// crash immediately
		case 1:
			db.Flush() // crash with clean memtable but live tree
		case 2:
			db.WaitIdle() // crash at a quiescent point
		}
		old := db
		db, err = Open(opts)
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		// The old handle becomes unusable but must not corrupt anything;
		// shut its workers down.
		old.mu.Lock()
		old.closed = true
		old.cond.Broadcast()
		old.mu.Unlock()
		old.bg.Wait()

		// Verify every key in the model, plus absence of deleted ones.
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil || string(v) != want {
				t.Fatalf("round %d: %s = %q/%v want %q", round, k, v, err, want)
			}
		}
		kvs, err := db.Scan(nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != len(model) {
			t.Fatalf("round %d: scan %d keys, model %d", round, len(kvs), len(model))
		}
	}
	db.Close()
}

// TestRepeatedReopenIsStable opens and cleanly closes the same store
// many times with no writes in between; the structure must not drift
// (no file-number churn, no data loss, no manifest bloat).
func TestRepeatedReopenIsStable(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	var files int
	for i := 0; i < 10; i++ {
		db, err = Open(opts)
		if err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		ts := db.TreeStats()
		if i == 0 {
			files = ts.TotalFiles
		} else if ts.TotalFiles != files {
			t.Fatalf("reopen %d changed structure: %d files vs %d", i, ts.TotalFiles, files)
		}
		if _, err := db.Get([]byte("k050")); err != nil {
			t.Fatalf("reopen %d lost data: %v", i, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryWithValueSeparationAndRangeDels exercises the recovery
// composition: WAL-held value pointers plus range tombstones.
func TestRecoveryWithValueSeparationAndRangeDels(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.ValueSeparationThreshold = 64
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 500)
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), big)
	}
	db.DeleteRange([]byte("k10"), []byte("k20"))
	// Crash.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, err := db2.Get([]byte(k))
		if i >= 10 && i < 20 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s should be range-deleted: %v", k, err)
			}
			continue
		}
		if err != nil || len(v) != 500 {
			t.Fatalf("%s: len=%d err=%v", k, len(v), err)
		}
	}
}
