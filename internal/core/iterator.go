package core

import (
	"bytes"

	"lsmlab/internal/kv"
	"lsmlab/internal/wisckey"
)

// IterOptions bounds and versions an iterator.
type IterOptions struct {
	// LowerBound (inclusive) and UpperBound (exclusive) restrict the
	// iterated user-key range; nil means unbounded.
	LowerBound []byte
	UpperBound []byte
	// snapshot pins visibility; 0 means "latest". Set via Snapshot.NewIterator.
	snapshot kv.SeqNum
}

// Iterator yields the live user keys and values of the store in key
// order, merging every run, hiding tombstoned and range-deleted data,
// and resolving WiscKey value pointers (tutorial §2.1.2 Scan).
type Iterator struct {
	db       *DB
	merge    *kv.MergingIterator
	releases []func()
	rangeTs  []kv.RangeTombstone
	opts     IterOptions
	seq      kv.SeqNum

	key        []byte
	value      []byte
	valid      bool
	srcPastKey bool // merge resolution left the stream on the next key
	err        error

	// sinks are the profiler's per-level ReadStats shims for this
	// iterator's table sources (one per level, so scan block fetches
	// attribute to the level they came from). Empty when the profiler
	// is off.
	sinks []profSink
}

// NewIterator returns an iterator over the current contents.
func (db *DB) NewIterator(opts IterOptions) (*Iterator, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.mu.Unlock()
	db.m.Scans.Add(1)

	// Like getEntry, iterator construction races against compactions
	// deleting files referenced by the just-acquired view; each retry
	// takes a fresh view, so only a reader starved on every attempt can
	// still observe the missing file.
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		it, err := db.newIterator(opts)
		if err != nil {
			if isMissingFile(err) {
				lastErr = err
				continue
			}
			return nil, err
		}
		return it, nil
	}
	return nil, lastErr
}

func (db *DB) newIterator(opts IterOptions) (*Iterator, error) {
	view := db.acquireView(opts.snapshot)
	it := &Iterator{db: db, opts: opts, seq: view.seq}

	var sources []kv.Iterator
	for _, mw := range view.mems {
		sources = append(sources, mw.mt.NewIterator())
		it.rangeTs = append(it.rangeTs, mw.rangeTombstones()...)
	}
	if db.prof != nil {
		it.sinks = make([]profSink, len(view.version.Levels))
		for i := range it.sinks {
			// Weight 1: scans attribute every block exactly (the setup
			// cost amortizes over the entries scanned).
			it.sinks[i] = profSink{base: db.stSink, lv: db.prof.levels, level: i, w: 1}
		}
	}
	for lvl, level := range view.version.Levels {
		for _, run := range level.Runs {
			for _, f := range run.Files {
				// Skip files wholly outside the bounds.
				if opts.UpperBound != nil && bytes.Compare(f.Smallest, opts.UpperBound) >= 0 {
					continue
				}
				if opts.LowerBound != nil && bytes.Compare(f.Largest, opts.LowerBound) < 0 {
					continue
				}
				r, release, err := db.tcache.acquire(f.Num)
				if err != nil {
					it.Close()
					return nil, err
				}
				it.releases = append(it.releases, release)
				if it.sinks != nil {
					sources = append(sources, r.NewIteratorWith(&it.sinks[lvl]))
				} else {
					sources = append(sources, r.NewIterator())
				}
				it.rangeTs = append(it.rangeTs, r.RangeTombstones()...)
			}
		}
	}
	it.merge = kv.NewMergingIterator(sources...)
	return it, nil
}

// covered reports whether the entry is shadowed by a visible, newer
// range tombstone.
func (it *Iterator) covered(ukey []byte, seq kv.SeqNum) bool {
	for _, rt := range it.rangeTs {
		if rt.Seq <= it.seq && rt.Seq > seq && rt.Covers(ukey, seq) {
			return true
		}
	}
	return false
}

// inBounds reports whether ukey is within the iterator's bounds.
func (it *Iterator) inBounds(ukey []byte) bool {
	if it.opts.UpperBound != nil && bytes.Compare(ukey, it.opts.UpperBound) >= 0 {
		return false
	}
	return true
}

// settle advances the merged stream until it rests on the newest
// visible live version of some user key, loading it into key/value.
func (it *Iterator) settle(srcValid bool) bool {
	for srcValid {
		ukey, seq, kind, _ := kv.ParseKey(it.merge.Key())
		if !it.inBounds(ukey) {
			it.valid = false
			return false
		}
		// Skip versions newer than the read snapshot.
		if !kv.Visible(seq, it.seq) {
			srcValid = it.merge.Next()
			continue
		}
		// First visible version of this key is the newest one. Decide
		// whether it is live.
		if kind == kv.KindMerge && !it.covered(ukey, seq) {
			// Fold the key's operand chain from the iterator's own
			// pinned sources (§2.2.6); the key is live even over a
			// tombstone (FullMerge with a nil base).
			return it.resolveMergeInline(ukey)
		}
		live := (kind == kv.KindSet || kind == kv.KindValuePointer) && !it.covered(ukey, seq)
		if live {
			it.key = append(it.key[:0], ukey...)
			if kind == kv.KindValuePointer {
				p, err := wisckey.DecodePointer(it.merge.Value())
				if err != nil {
					it.err = err
					it.valid = false
					return false
				}
				v, err := it.db.vlog.Read(p)
				if err != nil {
					it.err = err
					it.valid = false
					return false
				}
				it.value = append(it.value[:0], v...)
			} else {
				it.value = append(it.value[:0], it.merge.Value()...)
			}
			it.valid = true
			// Leave the source on this entry; Next will skip the rest of
			// the key's versions.
			return true
		}
		// Dead key: skip every remaining version of it. (Copy the key —
		// the merged iterator's buffer is invalidated by Next.)
		it.key = append(it.key[:0], ukey...)
		srcValid = it.skipKey(it.key)
	}
	// Exhaustion and a corrupt block look identical from here; keep the
	// distinction so Error/Close report a truncated scan.
	if it.err == nil {
		it.err = it.merge.Error()
	}
	it.valid = false
	return false
}

// skipKey advances the source past every version of ukey, reporting
// whether the source remains valid.
func (it *Iterator) skipKey(ukey []byte) bool {
	for it.merge.Next() {
		if kv.CompareUser(kv.UserKey(it.merge.Key()), ukey) != 0 {
			return true
		}
	}
	return false
}

// First positions at the first live entry.
func (it *Iterator) First() bool {
	var ok bool
	if it.opts.LowerBound != nil {
		ok = it.merge.SeekGE(kv.MakeSearchKey(it.opts.LowerBound, kv.MaxSeqNum))
	} else {
		ok = it.merge.First()
	}
	return it.settle(ok)
}

// SeekGE positions at the first live entry with user key >= ukey.
func (it *Iterator) SeekGE(ukey []byte) bool {
	if it.opts.LowerBound != nil && bytes.Compare(ukey, it.opts.LowerBound) < 0 {
		ukey = it.opts.LowerBound
	}
	return it.settle(it.merge.SeekGE(kv.MakeSearchKey(ukey, kv.MaxSeqNum)))
}

// resolveMergeInline is called with the merged stream positioned on the
// newest visible merge operand of ukey. It collects the operand chain
// down to the base value and yields the folded result. The stream is
// left either on an older same-key version (srcPastKey false) or on the
// next key already (srcPastKey true).
func (it *Iterator) resolveMergeInline(ukey []byte) bool {
	if it.db.opts.MergeOperator == nil {
		it.err = ErrNoMergeOperator
		it.valid = false
		return false
	}
	it.key = append(it.key[:0], ukey...)
	newestFirst := [][]byte{cp(it.merge.Value())}
	var base []byte
	it.srcPastKey = true // assume exhaustion; corrected on base/tombstone
	for it.merge.Next() {
		uk, seq, kind, _ := kv.ParseKey(it.merge.Key())
		if kv.CompareUser(uk, it.key) != 0 {
			break // stream now on the next key
		}
		if !kv.Visible(seq, it.seq) {
			continue
		}
		if it.covered(it.key, seq) {
			it.srcPastKey = false // still on this key; Next will skip it
			break
		}
		if kind == kv.KindMerge {
			newestFirst = append(newestFirst, cp(it.merge.Value()))
			continue
		}
		it.srcPastKey = false
		if kind == kv.KindSet {
			base = cp(it.merge.Value())
		} else if kind == kv.KindValuePointer {
			p, err := wisckey.DecodePointer(it.merge.Value())
			if err != nil {
				it.err = err
				it.valid = false
				return false
			}
			if base, err = it.db.vlog.Read(p); err != nil {
				it.err = err
				it.valid = false
				return false
			}
		}
		break // tombstones leave base nil
	}
	operands := make([][]byte, 0, len(newestFirst))
	for i := len(newestFirst) - 1; i >= 0; i-- {
		operands = append(operands, newestFirst[i])
	}
	v, err := it.db.opts.MergeOperator.FullMerge(it.key, base, operands)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	it.value = append(it.value[:0], v...)
	it.valid = true
	return true
}

// Next advances to the next live user key.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	if it.db.timeOps {
		start := it.db.opts.NowNs()
		defer func() { it.db.m.ScanNextNs.RecordSince(start, it.db.opts.NowNs()) }()
	}
	if it.srcPastKey {
		it.srcPastKey = false
		return it.settle(it.merge.Valid())
	}
	return it.settle(it.skipKey(it.key))
}

// Valid reports whether the iterator rests on a live entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key (stable until the next move).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (stable until the next move).
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error the iterator encountered.
func (it *Iterator) Err() error { return it.err }

// Close releases table references held by the iterator.
func (it *Iterator) Close() error {
	if it.merge != nil {
		it.merge.Close()
	}
	for _, rel := range it.releases {
		rel()
	}
	it.releases = nil
	it.valid = false
	return it.err
}
