package core

// RangeIter is the minimal bounded-range iteration surface shared by a
// single tree and the sharded store (internal/partition). The serving
// layer scans through it without knowing which engine form backs it:
// *Iterator satisfies it directly, and the partition router returns a
// merged, snapshot-vector-consistent implementation.
type RangeIter interface {
	// First positions at the first live entry; Next advances. Both
	// report whether the iterator rests on an entry.
	First() bool
	Next() bool
	// Key and Value return the current user key and value; the slices
	// are stable until the next positioning call.
	Key() []byte
	Value() []byte
	// Err returns the first error the iterator encountered (exhaustion
	// and a corrupt source look identical from the positioning calls).
	Err() error
	Close() error
}

// NewRangeIter returns an iterator over the live entries in
// [lower, upper) — nil bounds mean unbounded — typed as the engine-
// neutral RangeIter.
func (db *DB) NewRangeIter(lower, upper []byte) (RangeIter, error) {
	return db.NewIterator(IterOptions{LowerBound: lower, UpperBound: upper})
}

// VisibleSeq returns the published sequence-number watermark: every
// batch at or below it is fully applied and visible to readers.
func (db *DB) VisibleSeq() uint64 { return db.visibleSeq.Load() }

// SeqVector returns the visibility watermark as a one-element vector —
// the degenerate form of the sharded store's per-shard vector, so the
// wire protocol's WATERMARK verb has one shape for both engine forms.
func (db *DB) SeqVector() []uint64 { return []uint64{db.visibleSeq.Load()} }
