package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

// stressKey names one op of one batch of one writer, so tests can
// reconstruct exactly which keys each Apply call carried.
func stressKey(w, batch, op int) []byte {
	return []byte(fmt.Sprintf("w%02d-b%04d-o%d", w, batch, op))
}

// TestConcurrentApplyStress drives N writers × M batches through the
// commit pipeline and checks the pipeline's core invariants: no lost or
// duplicated sequence numbers (the final watermark equals ops issued),
// visibleSeq is monotonic while writes race, every acknowledged key is
// readable, and the group-size accounting adds up. Run with -race.
func TestConcurrentApplyStress(t *testing.T) {
	for _, syncWAL := range []bool{false, true} {
		t.Run(fmt.Sprintf("sync=%v", syncWAL), func(t *testing.T) {
			fs := vfs.NewMem()
			opts := DefaultOptions(fs, "db")
			opts.SyncWAL = syncWAL
			db, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			const writers = 8
			const opsPerBatch = 3
			batches := 200
			if testing.Short() {
				batches = 40
			}

			// Watermark sampler: visibleSeq must never move backwards.
			stop := make(chan struct{})
			var samplerWG sync.WaitGroup
			samplerWG.Add(1)
			go func() {
				defer samplerWG.Done()
				var last uint64
				for {
					select {
					case <-stop:
						return
					default:
					}
					v := db.visibleSeq.Load()
					if v < last {
						t.Errorf("visibleSeq moved backwards: %d -> %d", last, v)
						return
					}
					last = v
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var b Batch
					for i := 0; i < batches; i++ {
						b.Reset()
						for j := 0; j < opsPerBatch; j++ {
							b.Put(stressKey(w, i, j), []byte(fmt.Sprintf("v-%d-%d-%d", w, i, j)))
						}
						if err := db.Apply(&b); err != nil {
							t.Errorf("writer %d batch %d: %v", w, i, err)
							return
						}
						if i%16 == 0 {
							// Read-your-writes: an acknowledged batch must be
							// visible immediately.
							if _, err := db.Get(stressKey(w, i, 0)); err != nil {
								t.Errorf("writer %d lost own batch %d: %v", w, i, err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			samplerWG.Wait()

			// The sequence space starts at 1 (0 is the read-at-latest
			// sentinel), so totalOps allocations land on base+totalOps.
			totalOps := uint64(writers*batches*opsPerBatch) + 1
			if got := db.lastSeq.Load(); got != totalOps {
				t.Errorf("lastSeq = %d, want %d (lost or duplicated seqnums)", got, totalOps)
			}
			if got := db.visibleSeq.Load(); got != totalOps {
				t.Errorf("visibleSeq = %d, want %d (watermark stalled)", got, totalOps)
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < batches; i++ {
					for j := 0; j < opsPerBatch; j++ {
						v, err := db.Get(stressKey(w, i, j))
						if err != nil {
							t.Fatalf("key w=%d b=%d o=%d unreadable: %v", w, i, j, err)
						}
						if want := fmt.Sprintf("v-%d-%d-%d", w, i, j); string(v) != want {
							t.Fatalf("key w=%d b=%d o=%d = %q, want %q", w, i, j, v, want)
						}
					}
				}
			}

			m := db.Metrics()
			if m.CommitBatches != int64(writers*batches) {
				t.Errorf("CommitBatches = %d, want %d", m.CommitBatches, writers*batches)
			}
			if m.CommitGroups < 1 || m.CommitGroups > m.CommitBatches {
				t.Errorf("CommitGroups = %d out of range [1, %d]", m.CommitGroups, m.CommitBatches)
			}
			if gs := db.CommitGroupSizes(); gs.Sum != int64(writers*batches) {
				t.Errorf("group-size histogram sum = %d, want %d (batches must partition into groups)", gs.Sum, writers*batches)
			}
			if syncWAL && m.WALSyncs != m.CommitGroups {
				t.Errorf("WALSyncs = %d, want one per group (%d)", m.WALSyncs, m.CommitGroups)
			}
		})
	}
}

// TestSnapshotAtomicityUnderConcurrentWrites races snapshot readers
// against batched writers: because visibleSeq advances in commit order
// past whole batches, a snapshot must observe each batch all-or-nothing.
func TestSnapshotAtomicityUnderConcurrentWrites(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(DefaultOptions(fs, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers = 4
	const opsPerBatch = 4
	batches := 150
	if testing.Short() {
		batches = 30
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rnd := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.NewSnapshot()
				w, i := rnd.Intn(writers), rnd.Intn(batches)
				visible := 0
				for j := 0; j < opsPerBatch; j++ {
					_, err := snap.Get(stressKey(w, i, j))
					switch {
					case err == nil:
						visible++
					case errors.Is(err, ErrNotFound):
					default:
						t.Errorf("snapshot get: %v", err)
						snap.Release()
						return
					}
				}
				snap.Release()
				if visible != 0 && visible != opsPerBatch {
					t.Errorf("snapshot saw %d/%d ops of batch w=%d b=%d: batch visibility must be atomic",
						visible, opsPerBatch, w, i)
					return
				}
			}
		}(int64(r) + 1)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var b Batch
			for i := 0; i < batches; i++ {
				b.Reset()
				for j := 0; j < opsPerBatch; j++ {
					b.Put(stressKey(w, i, j), []byte("v"))
				}
				if err := db.Apply(&b); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
}

// TestGroupCommitCrashRecovery injects a WAL device failure while
// concurrent writers stream batches, then simulates a crash (reopen
// without Close). Every batch that was acknowledged must be fully
// recovered; every batch that errored or never returned must be
// recovered all-or-nothing — per-batch atomicity survives the group
// framing.
func TestGroupCommitCrashRecovery(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	db, err := Open(DefaultOptions(ffs, "db"))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const opsPerBatch = 3
	const batches = 80
	var acked sync.Map // "w-b" -> true

	// Fail the 60th WAL write: with group commit, that takes down one
	// whole commit group mid-stream.
	ffs.Arm(faultfs.ClassWAL, faultfs.OpWrite, 60)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var b Batch
			for i := 0; i < batches; i++ {
				b.Reset()
				for j := 0; j < opsPerBatch; j++ {
					b.Put(stressKey(w, i, j), []byte("v"))
				}
				if err := db.Apply(&b); err == nil {
					acked.Store(fmt.Sprintf("%d-%d", w, i), true)
				}
			}
		}(w)
	}
	wg.Wait()

	// Crash: abandon db without Close and reopen over the healthy base.
	db2, err := Open(DefaultOptions(base, "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	for w := 0; w < writers; w++ {
		for i := 0; i < batches; i++ {
			present := 0
			for j := 0; j < opsPerBatch; j++ {
				if _, err := db2.Get(stressKey(w, i, j)); err == nil {
					present++
				}
			}
			if _, ok := acked.Load(fmt.Sprintf("%d-%d", w, i)); ok {
				if present != opsPerBatch {
					t.Errorf("acked batch w=%d b=%d lost: %d/%d ops recovered", w, i, present, opsPerBatch)
				}
			} else if present != 0 && present != opsPerBatch {
				t.Errorf("failed batch w=%d b=%d partially recovered: %d/%d ops", w, i, present, opsPerBatch)
			}
		}
	}
}
