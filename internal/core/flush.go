package core

import (
	"sort"

	"lsmlab/internal/events"
	"lsmlab/internal/kv"
	"lsmlab/internal/manifest"
	"lsmlab/internal/sstable"
	"lsmlab/internal/trace"
	"lsmlab/internal/vfs"
)

// outputSet writes a stream of sorted entries into one or more table
// files split at the target size, and distributes surviving range
// tombstones across those files clipped at file boundaries so that the
// files of the resulting run never overlap.
type outputSet struct {
	db         *DB
	bitsPerKey float64
	limiter    *rateLimiter
	// inheritTombstoneNs propagates the oldest input tombstone's
	// creation time to outputs that still carry tombstones, so the FADE
	// persistence deadline is measured from the original delete, not
	// from the latest rewrite (Lethe, §2.3.3).
	inheritTombstoneNs int64

	cur      *sstable.Writer
	curFile  vfs.File
	curNum   uint64
	metas    []*manifest.FileMeta
	pending  []kv.RangeTombstone // surviving tombstones, sorted by start
	curStart []byte              // clip lower bound for the open file (nil = unbounded)
	overall  kv.KeyRange         // union of input key ranges (clip envelope)
}

func (db *DB) newOutputSet(bitsPerKey float64, throttled bool, rangeDels []kv.RangeTombstone, overall kv.KeyRange) *outputSet {
	o := &outputSet{db: db, bitsPerKey: bitsPerKey, overall: overall}
	if throttled && db.opts.CompactionBandwidthBytesPerSec > 0 {
		// Each compaction gets its own token bucket: the simulated
		// device's aggregate bandwidth scales with concurrency (SSD/NVM
		// queue-depth parallelism, §2.2.5), while any single compaction
		// is paced so flushes keep headroom (SILK, §2.2.3).
		o.limiter = newRateLimiter(db.opts.CompactionBandwidthBytesPerSec, db.opts.NowNs, db.opts.SleepFunc,
			func(ns int64) { db.m.ThrottleNs.Add(ns) })
	}
	// Clip tombstones to the compaction envelope and sort by start.
	for _, rt := range rangeDels {
		c := rt
		if overall.Smallest != nil && kv.CompareUser(c.Start, overall.Smallest) < 0 {
			c.Start = overall.Smallest
		}
		upper := upperBoundExclusive(overall.Largest)
		if upper != nil && kv.CompareUser(c.End, upper) > 0 {
			c.End = upper
		}
		if !c.Empty() {
			o.pending = append(o.pending, c)
		}
	}
	sort.Slice(o.pending, func(i, j int) bool {
		return kv.CompareUser(o.pending[i].Start, o.pending[j].Start) < 0
	})
	return o
}

// upperBoundExclusive returns the smallest key strictly greater than k
// (k with a zero byte appended), or nil for a nil k.
func upperBoundExclusive(k []byte) []byte {
	if k == nil {
		return nil
	}
	return append(append([]byte(nil), k...), 0)
}

func (o *outputSet) openFile() error {
	o.db.mu.Lock()
	num := o.db.allocFileNum()
	o.db.mu.Unlock()
	f, err := o.db.fs.Create(vfs.Join(o.db.dir, manifest.FileName(num)))
	if err != nil {
		return err
	}
	o.curFile = f
	o.curNum = num
	o.cur = sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:  o.db.opts.BlockSize,
		BitsPerKey: o.bitsPerKey,
		NowNs:      o.db.opts.NowNs,
	})
	return nil
}

// add appends one entry, opening and splitting files as needed.
func (o *outputSet) add(ikey, value []byte) error {
	if o.cur == nil {
		if err := o.openFile(); err != nil {
			return err
		}
	}
	if o.limiter != nil {
		o.limiter.waitFor(len(ikey) + len(value))
	}
	if err := o.cur.Add(ikey, value); err != nil {
		return err
	}
	if o.cur.EstimatedSize() >= o.db.opts.TargetFileSize {
		return o.closeCurrent(false)
	}
	return nil
}

// closeCurrent finishes the open file, assigning it the range-tombstone
// pieces that fall at or below its boundary. final marks the last file
// of the compaction, which absorbs all remaining tombstone pieces.
func (o *outputSet) closeCurrent(final bool) error {
	if o.cur == nil {
		return nil
	}
	// The file's clip window is [o.curStart, boundary). For the final
	// file the boundary is the envelope's upper bound.
	var boundary []byte
	if final {
		boundary = upperBoundExclusive(o.overall.Largest)
	} else {
		boundary = upperBoundExclusive(o.lastPointKey())
	}
	var remaining []kv.RangeTombstone
	for _, rt := range o.pending {
		piece := rt
		if o.curStart != nil && kv.CompareUser(piece.Start, o.curStart) < 0 {
			piece.Start = o.curStart
		}
		if boundary != nil && kv.CompareUser(piece.End, boundary) > 0 {
			// Split: the part past the boundary stays pending. The
			// remainder keeps its own start if that lies beyond the
			// boundary — clamping it down would widen the tombstone
			// over keys it never covered.
			rest := rt
			if kv.CompareUser(boundary, rest.Start) > 0 {
				rest.Start = boundary
			}
			if !rest.Empty() {
				remaining = append(remaining, rest)
			}
			piece.End = boundary
		}
		if !piece.Empty() {
			o.cur.AddRangeTombstone(piece)
		}
	}
	o.pending = remaining
	o.curStart = boundary

	p, err := o.cur.Finish()
	if err != nil {
		return err
	}
	if err := o.curFile.Close(); err != nil {
		return err
	}
	size := o.cur.EstimatedSize()
	meta := &manifest.FileMeta{
		Num:               o.curNum,
		Size:              size,
		Smallest:          p.Smallest,
		Largest:           p.Largest,
		SmallestSeq:       p.SmallestSeq,
		LargestSeq:        p.LargestSeq,
		NumEntries:        p.NumEntries,
		NumTombstones:     p.NumTombstones,
		NumRangeDels:      p.NumRangeDels,
		OldestTombstoneNs: p.OldestTombstoneNs,
	}
	if meta.NumTombstones+meta.NumRangeDels > 0 && o.inheritTombstoneNs > 0 &&
		(meta.OldestTombstoneNs == 0 || o.inheritTombstoneNs < meta.OldestTombstoneNs) {
		meta.OldestTombstoneNs = o.inheritTombstoneNs
	}
	o.metas = append(o.metas, meta)
	o.cur = nil
	o.curFile = nil
	return nil
}

// lastPointKey returns the largest user key added to the open file.
func (o *outputSet) lastPointKey() []byte {
	// The writer tracks Largest in its properties as keys are added; we
	// reach it through a tiny helper on the writer.
	return o.cur.LargestUserKey()
}

// finish closes the last file (creating a tombstone-only file if point
// entries never materialized but tombstones survive) and returns the
// metadata of all written files.
func (o *outputSet) finish() ([]*manifest.FileMeta, error) {
	if o.cur == nil && len(o.pending) > 0 {
		if err := o.openFile(); err != nil {
			return nil, err
		}
	}
	if o.cur != nil {
		if err := o.closeCurrent(true); err != nil {
			return nil, err
		}
	}
	return o.metas, nil
}

// abort removes any files written so far (on error paths).
func (o *outputSet) abort() {
	if o.curFile != nil {
		o.curFile.Close()
		o.db.fs.Remove(vfs.Join(o.db.dir, manifest.FileName(o.curNum)))
	}
	for _, m := range o.metas {
		o.db.fs.Remove(vfs.Join(o.db.dir, manifest.FileName(m.Num)))
	}
}

// totalBytes sums the written file sizes.
func totalBytes(metas []*manifest.FileMeta) uint64 {
	var s uint64
	for _, m := range metas {
		s += m.Size
	}
	return s
}

// flushMemtable writes one immutable buffer to a new level-0 run
// (tutorial §2.1.2 Flush), bracketed by FlushBegin/FlushEnd events and
// timed into the flush latency histogram. Every outcome — success,
// empty buffer, or error — emits exactly one matching end event.
func (db *DB) flushMemtable(mw *memWrapper) error {
	jobID := db.nextJobID()
	start := db.opts.NowNs()
	sp := db.tracer.StartRetained(trace.OpFlush)
	db.emit(events.Event{Type: events.FlushBegin, JobID: jobID,
		InputBytes: int64(mw.mt.ApproximateBytes())})
	metas, err := db.doFlush(mw)
	dur := db.opts.NowNs() - start
	db.m.FlushNs.RecordNs(dur)
	sp.AddBytes(int64(totalBytes(metas)))
	sp.AddEntries(len(metas))
	sp.SetErr(err)
	db.tracer.Finish(sp)
	db.emit(events.Event{Type: events.FlushEnd, JobID: jobID,
		OutputFiles: len(metas), OutputBytes: int64(totalBytes(metas)),
		DurationNs: dur, Err: err})
	return err
}

// doFlush is the body of flushMemtable; it returns the installed file
// metadata for event reporting. Nothing is garbage-collected at flush
// time: every version, tombstone, and range tombstone survives to disk.
func (db *DB) doFlush(mw *memWrapper) ([]*manifest.FileMeta, error) {
	// Wait out in-flight commit-group inserts: a buffer can be rotated
	// into the immutable queue while members of a claimed group are
	// still applying to it. Flushing before they land would write an
	// incomplete run and delete the WAL segment that still protects
	// those batches.
	mw.writers.Wait()
	rangeDels := mw.rangeTombstones()
	it := mw.mt.NewIterator()
	defer it.Close()

	// The envelope is the buffer's own key span.
	var overall kv.KeyRange
	for ok := it.First(); ok; ok = it.Next() {
		overall.Extend(kv.UserKey(it.Key()))
	}
	for _, rt := range rangeDels {
		overall.Extend(rt.Start)
		overall.Extend(rt.End)
	}

	db.mu.Lock()
	bits := db.filterBitsForRun(db.version, 0)
	db.mu.Unlock()

	out := db.newOutputSet(bits, false, rangeDels, overall)
	for ok := it.First(); ok; ok = it.Next() {
		if err := out.add(it.Key(), it.Value()); err != nil {
			out.abort()
			return nil, err
		}
	}
	metas, err := out.finish()
	if err != nil {
		out.abort()
		return nil, err
	}

	// Install in queue order: flushes may build concurrently, but the
	// level-0 run stack must reflect buffer recency, so a flush waits
	// until its buffer is the oldest still queued. (Recovery flushes are
	// not queued and install immediately.)
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		queued := false
		for _, x := range db.imm {
			if x == mw {
				queued = true
				break
			}
		}
		if !queued || db.imm[0] == mw || db.closed {
			break
		}
		db.cond.Wait()
	}
	if len(metas) > 0 {
		db.version = db.version.PushRun(0, &manifest.Run{Files: metas})
		if err := db.commitLocked(); err != nil {
			return metas, err
		}
		db.m.Flushes.Add(1)
		db.m.FlushBytes.Add(int64(totalBytes(metas)))
		if db.prof != nil {
			db.prof.recordWrite(0, "flush", int64(totalBytes(metas)))
		}
	}
	if len(db.imm) > 0 && db.imm[0] == mw {
		db.imm = db.imm[1:]
		if mw.walNum != 0 {
			db.fs.Remove(vfs.Join(db.dir, manifest.WALName(mw.walNum)))
		}
	}
	db.cond.Broadcast()
	return metas, nil
}
