package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

// TestRangeTombstoneClippedAcrossSplitOutputs forces a flush to split
// into many small files while a range tombstone spans most of the key
// space, then validates the structural invariants: files within the run
// stay non-overlapping even with tombstone-extended bounds, and reads
// behave as if the tombstone were whole.
func TestRangeTombstoneClippedAcrossSplitOutputs(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.BufferBytes = 1 << 20 // everything in one memtable
	opts.TargetFileSize = 2048 // force many output files per flush
	opts.Paranoid = true       // Version.Check after every change
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("v"), 50))
	}
	// Tombstone spanning the middle 60% of the keys.
	db.DeleteRange([]byte("k0100"), []byte("k0400"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Structure: one L0 run, several files, rangedels clipped per file.
	v := db.Version()
	run := v.Levels[0].Runs[0]
	if len(run.Files) < 3 {
		t.Fatalf("want several split files, got %d", len(run.Files))
	}
	var rdTotal uint64
	for _, f := range run.Files {
		rdTotal += f.NumRangeDels
	}
	if rdTotal < 2 {
		t.Fatalf("spanning tombstone should be split into pieces, got %d", rdTotal)
	}
	if err := v.Check(); err != nil {
		t.Fatalf("run invariants violated: %v", err)
	}

	// Read semantics identical to an unsplit tombstone.
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", i)
		_, err := db.Get([]byte(k))
		deleted := i >= 100 && i < 400
		if deleted && !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s should be deleted: %v", k, err)
		}
		if !deleted && err != nil {
			t.Fatalf("%s should live: %v", k, err)
		}
	}
	// Scans agree.
	kvs, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 200 {
		t.Fatalf("scan %d live keys, want 200", len(kvs))
	}

	// And a full compaction purges it all without violating invariants.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	kvs, _ = db.Scan(nil, nil, 0)
	if len(kvs) != 200 {
		t.Fatalf("post-compaction scan %d, want 200", len(kvs))
	}
}

// TestMultipleOverlappingRangeTombstonesAcrossSplits layers several
// tombstones with different spans and sequence interleavings.
func TestMultipleOverlappingRangeTombstonesAcrossSplits(t *testing.T) {
	fs := vfs.NewMem()
	opts := DefaultOptions(fs, "db")
	opts.TargetFileSize = 2048
	opts.Paranoid = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	live := map[string]bool{}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%04d", i)
		db.Put([]byte(k), bytes.Repeat([]byte("v"), 40))
		live[k] = true
	}
	del := func(lo, hi int) {
		db.DeleteRange([]byte(fmt.Sprintf("k%04d", lo)), []byte(fmt.Sprintf("k%04d", hi)))
		for i := lo; i < hi; i++ {
			delete(live, fmt.Sprintf("k%04d", i))
		}
	}
	del(50, 150)
	// Resurrect part of the range, then delete a sub-slice again.
	for i := 80; i < 120; i++ {
		k := fmt.Sprintf("k%04d", i)
		db.Put([]byte(k), []byte("back"))
		live[k] = true
	}
	del(100, 110)
	del(300, 390)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()

	kvs, err := db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(live) {
		t.Fatalf("scan %d, model %d", len(kvs), len(live))
	}
	for _, kvp := range kvs {
		if !live[string(kvp.Key)] {
			t.Fatalf("dead key %s surfaced", kvp.Key)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	kvs, _ = db.Scan(nil, nil, 0)
	if len(kvs) != len(live) {
		t.Fatalf("post-compaction scan %d, model %d", len(kvs), len(live))
	}
}

// TestUpperBoundExclusiveHelper pins the boundary-key arithmetic the
// clipping relies on.
func TestUpperBoundExclusiveHelper(t *testing.T) {
	if upperBoundExclusive(nil) != nil {
		t.Error("nil passes through")
	}
	up := upperBoundExclusive([]byte("abc"))
	if string(up) != "abc\x00" {
		t.Errorf("upper bound %q", up)
	}
	if !(kv.CompareUser([]byte("abc"), up) < 0) {
		t.Error("bound must be strictly greater")
	}
	// Nothing sorts between k and k+\x00.
	if kv.CompareUser([]byte("abc"), up) >= 0 || kv.CompareUser(up, []byte("abd")) >= 0 {
		t.Error("bound ordering")
	}
}
