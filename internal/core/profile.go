package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"lsmlab/internal/admission"
	"lsmlab/internal/metrics"
	"lsmlab/internal/sketch"
	"lsmlab/internal/sstable"
)

// This file is the engine's self-dissection layer (tutorial Module III,
// ROADMAP item 2): a sampling profiler that characterizes the live
// workload — operation mix, hot keys, skew, distinct-key cardinality,
// per-tenant mix — and attributes I/O to the level it touched, from
// which the engine reports its measured RUM point (read, write, and
// space amplification over a decay window). The online tuning loop and
// the observability surfaces (/workload, lsmctl workload, /metrics)
// consume the resulting WorkloadProfile.
//
// Cost discipline: an unsampled get pays the profiler nothing (its
// sampling decision reuses the Gets counter increment); unsampled puts
// and scans pay one striped atomic increment. One op in profSample
// feeds the sketches, all of which update pre-allocated state without
// allocating (TestGetHotZeroAllocs and the profiler-overhead guard in
// bench-smoke enforce this).

const (
	profStripes     = 16 // striped op counters; stripe = keyhash & 15
	profSampleShift = 5
	profSample      = 1 << profSampleShift // observe 1 op in 32
	profTopK        = 16                   // hot keys reported
	profMaxTenants  = 64                   // per-tenant rows tracked, rest fold into "other"
)

// profOp indexes the per-tenant operation-kind counters.
type profOp int

const (
	profGet profOp = iota
	profPut
	profDelete
	profScan
	numProfOps
)

// Compaction write reasons attributed per level. Indices into
// levelIO.writeBytes; names must match compaction.Reason strings.
const (
	reasonFlush = iota
	reasonRunCount
	reasonLevelSize
	reasonTombstoneAge
	reasonManual
	reasonOther
	numReasons
)

var reasonNames = [numReasons]string{
	"flush", "run-count", "level-size", "tombstone-age", "manual", "other",
}

func reasonIndex(r string) int {
	for i, n := range reasonNames {
		if n == r {
			return i
		}
	}
	return reasonOther
}

// stripe is a cache-line-padded operation counter.
type stripe struct {
	n atomic.Uint64
	_ [56]byte
}

// levelIO holds one level's attribution counters, padded so adjacent
// levels do not false-share cache lines under concurrent readers.
type levelIO struct {
	runsProbed       atomic.Int64 // get-path runs consulted at this level
	blockReads       atomic.Int64 // data blocks fetched (get + scan paths)
	blockReadsCached atomic.Int64
	readBytes        atomic.Int64             // uncached data-block bytes read from disk
	compactionIn     atomic.Int64             // bytes read as compaction input from this level
	writeBytes       [numReasons]atomic.Int64 // bytes written into this level, per reason
	_                [16]byte
}

// levelIOSnap is a plain copy of levelIO at one instant.
type levelIOSnap struct {
	runsProbed, blockReads, blockReadsCached, readBytes, compactionIn int64
	writeBytes                                                        [numReasons]int64
}

func (l *levelIO) snap() levelIOSnap {
	s := levelIOSnap{
		runsProbed:       l.runsProbed.Load(),
		blockReads:       l.blockReads.Load(),
		blockReadsCached: l.blockReadsCached.Load(),
		readBytes:        l.readBytes.Load(),
		compactionIn:     l.compactionIn.Load(),
	}
	for i := range s.writeBytes {
		s.writeBytes[i] = l.writeBytes[i].Load()
	}
	return s
}

func (s levelIOSnap) sub(o levelIOSnap) levelIOSnap {
	d := levelIOSnap{
		runsProbed:       s.runsProbed - o.runsProbed,
		blockReads:       s.blockReads - o.blockReads,
		blockReadsCached: s.blockReadsCached - o.blockReadsCached,
		readBytes:        s.readBytes - o.readBytes,
		compactionIn:     s.compactionIn - o.compactionIn,
	}
	for i := range d.writeBytes {
		d.writeBytes[i] = s.writeBytes[i] - o.writeBytes[i]
	}
	return d
}

// profSink is the per-lookup ReadStats shim that tags block fetches
// with the level being probed. It lives inside the pooled readScratch
// (and per-iterator for scans), so injecting it allocates nothing.
// w is the sampling weight of its counts: profSample on the sampled
// get path (which skips 15 of 16 lookups), 1 on scan iterators (which
// attribute every block exactly).
type profSink struct {
	base  sstable.ReadStats // the engine statsSink or a tracedSink
	lv    []levelIO
	level int
	w     int64
}

func (s *profSink) FilterProbe(negative bool) { s.base.FilterProbe(negative) }

func (s *profSink) BlockRead(cached bool) {
	s.base.BlockRead(cached)
	l := &s.lv[s.level]
	l.blockReads.Add(s.w)
	if cached {
		l.blockReadsCached.Add(s.w)
	}
}

// BlockReadBytes implements sstable.BlockBytesSink: only uncached
// fetches touched the disk, so only they count toward read bytes.
func (s *profSink) BlockReadBytes(n int, cached bool) {
	if !cached {
		s.lv[s.level].readBytes.Add(int64(n) * s.w)
	}
}

// tenantCounts is one tenant's sampled operation counts (decayed by
// half at every window rotation, like the sketches).
type tenantCounts struct {
	name string
	ops  [numProfOps]uint64
}

func (t *tenantCounts) total() uint64 {
	var s uint64
	for _, v := range t.ops {
		s += v
	}
	return s
}

// tenantTable is a bounded space-saving table of per-tenant mixes: a
// new tenant beyond the cap evicts the lowest-traffic row, folding its
// counts into the "other" bucket, so a hostile flood of distinct key
// prefixes cannot grow profiler memory (satellite of the same
// cardinality bound admission.Controller enforces). Lookups for
// tracked tenants are allocation-free.
type tenantTable struct {
	mu    sync.Mutex
	max   int
	m     map[string]*tenantCounts
	other tenantCounts
}

func newTenantTable(max int) *tenantTable {
	return &tenantTable{max: max, m: make(map[string]*tenantCounts, max)}
}

// observe credits inc sampled ops of kind op to key's tenant prefix.
// The prefix scan mirrors admission.TenantOf without its allocation.
func (t *tenantTable) observe(key []byte, op profOp, inc uint64) {
	tenant := key[:0]
	for i, b := range key {
		if b == '/' {
			tenant = key[:i]
			break
		}
	}
	t.mu.Lock()
	if e := t.m[string(tenant)]; e != nil {
		e.ops[op] += inc
		t.mu.Unlock()
		return
	}
	if len(t.m) < t.max {
		name := string(tenant)
		e := &tenantCounts{name: name}
		e.ops[op] = inc
		t.m[name] = e
		t.mu.Unlock()
		return
	}
	// Evict the minimum-traffic row into "other"; the newcomer gets a
	// fresh row (space-saving: a persistently busy tenant always ends up
	// tracked, one-shot prefixes churn through the last slot).
	var min *tenantCounts
	for _, e := range t.m {
		if min == nil || e.total() < min.total() {
			min = e
		}
	}
	delete(t.m, min.name)
	for i, v := range min.ops {
		t.other.ops[i] += v
	}
	name := string(tenant)
	e := &tenantCounts{name: name}
	e.ops[op] = inc
	t.m[name] = e
	t.mu.Unlock()
}

// halve decays every row (rotation-time exponential decay).
func (t *tenantTable) halve() {
	t.mu.Lock()
	for name, e := range t.m {
		var total uint64
		for i := range e.ops {
			e.ops[i] /= 2
			total += e.ops[i]
		}
		if total == 0 {
			delete(t.m, name)
		}
	}
	for i := range t.other.ops {
		t.other.ops[i] /= 2
	}
	t.mu.Unlock()
}

// rows returns the tracked tenants sorted by descending traffic, with
// the "other" bucket appended when non-empty.
func (t *tenantTable) rows() []TenantWorkload {
	t.mu.Lock()
	out := make([]TenantWorkload, 0, len(t.m)+1)
	for _, e := range t.m {
		out = append(out, tenantRow(e))
	}
	var other *TenantWorkload
	if t.other.total() > 0 {
		r := tenantRow(&t.other)
		r.Tenant = "other"
		other = &r
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ops != out[j].Ops {
			return out[i].Ops > out[j].Ops
		}
		return out[i].Tenant < out[j].Tenant
	})
	if other != nil {
		out = append(out, *other)
	}
	return out
}

func tenantRow(e *tenantCounts) TenantWorkload {
	name := e.name
	if name == admission.DefaultTenant {
		name = "(default)" // matches the server's FormatStats convention
	}
	return TenantWorkload{
		Tenant:  name,
		Gets:    int64(e.ops[profGet]),
		Puts:    int64(e.ops[profPut]),
		Deletes: int64(e.ops[profDelete]),
		Scans:   int64(e.ops[profScan]),
		Ops:     int64(e.total()),
	}
}

// profSnap pairs a metrics snapshot with the per-level counters at one
// window rotation.
type profSnap struct {
	m      metrics.Snapshot
	levels []levelIOSnap
}

// profiler is the engine's live workload characterizer.
type profiler struct {
	m       *metrics.Metrics
	stripes [profStripes]stripe
	win     *sketch.Window
	levels  []levelIO
	tenants *tenantTable

	// snapMu guards the rotation snapshots: snaps[0] was taken at the
	// most recent rotation, snaps[1] one rotation earlier. Windowed
	// values are current − snaps[1], covering one to two half-lives —
	// the same horizon the sketch generations cover.
	snapMu sync.Mutex
	snaps  [2]profSnap
}

func newProfiler(m *metrics.Metrics, numLevels, windowOps int) *profiler {
	p := &profiler{
		m:       m,
		levels:  make([]levelIO, numLevels),
		tenants: newTenantTable(profMaxTenants),
		win: sketch.NewWindow(sketch.WindowConfig{
			HalfLifeOps: uint64(windowOps),
			K:           2 * profTopK, // track extra so the merged report stays full
		}),
	}
	p.win.OnRotate = func(uint64) {
		p.snapMu.Lock()
		p.snaps[1] = p.snaps[0]
		p.snaps[0] = p.snapNow()
		p.snapMu.Unlock()
		p.tenants.halve()
	}
	return p
}

func (p *profiler) snapNow() profSnap {
	s := profSnap{m: p.m.Snapshot(), levels: make([]levelIOSnap, len(p.levels))}
	for i := range p.levels {
		s.levels[i] = p.levels[i].snap()
	}
	return s
}

// profSampled reports whether the n-th tick of an op clock is sampled.
// Multiplicative (Weyl) hashing of the counter selects an aperiodic
// 1-in-profSample subset: a plain n%profSample==0 rule lets any
// workload whose key pattern repeats with a period dividing profSample
// (alternating benchmark loops, round-robin writers) systematically
// dodge or monopolize the sampler.
func profSampled(n uint64) bool {
	return (n*0x9e3779b97f4a7c15)>>(64-profSampleShift) == 0
}

// tick advances the put/scan-path op clock and reports whether this
// operation is sampled; the get path derives its sampling decision
// from the Gets counter it already increments, so its unsampled path
// pays the profiler no atomics at all (the bench-smoke overhead
// budget).
func (p *profiler) tick(h uint64) bool {
	return profSampled(p.stripes[h&(profStripes-1)].n.Add(1))
}

// observe feeds one sampled operation to the sketches and the tenant
// table, weighted by the sampling factor. Call only when tick returned
// true. Allocation-free in steady state.
func (p *profiler) observe(op profOp, h uint64, key []byte) {
	p.win.Observe(h, key, profSample)
	p.tenants.observe(key, op, profSample)
}

// recordWrite attributes bytes written into level for the given
// compaction reason ("flush" for memtable flushes).
func (p *profiler) recordWrite(level int, reason string, bytes int64) {
	if level >= 0 && level < len(p.levels) {
		p.levels[level].writeBytes[reasonIndex(reason)].Add(bytes)
	}
}

// recordCompactionIn attributes bytes read as compaction input from
// level.
func (p *profiler) recordCompactionIn(level int, bytes int64) {
	if level >= 0 && level < len(p.levels) {
		p.levels[level].compactionIn.Add(bytes)
	}
}

// baseline returns the snapshot two rotations back (the start of the
// decay window); before the first rotation it is the zero snapshot.
func (p *profiler) baseline() profSnap {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	return p.snaps[1]
}

// ---- Reported profile ----

// TenantWorkload is one tenant's sampled recent operation mix.
// Counts are sampling-scaled estimates decayed across window
// rotations, not exact totals.
type TenantWorkload struct {
	Tenant  string `json:"tenant"`
	Gets    int64  `json:"gets"`
	Puts    int64  `json:"puts"`
	Deletes int64  `json:"deletes"`
	Scans   int64  `json:"scans"`
	Ops     int64  `json:"ops"`
}

// LevelProfile is one level's I/O attribution over the decay window.
type LevelProfile struct {
	Level            int   `json:"level"`
	LiveRuns         int   `json:"live_runs"`
	RunsProbed       int64 `json:"runs_probed"`
	BlockReads       int64 `json:"block_reads"`
	BlockReadsCached int64 `json:"block_reads_cached"`
	BytesRead        int64 `json:"bytes_read"`
	// ReadAmp is this level's contribution to read amplification: runs
	// probed here per point lookup, over the window.
	ReadAmp float64 `json:"read_amp"`
	// BytesWritten is the total written into this level over the
	// window; WriteByReason splits it by trigger (flush, run-count,
	// level-size, tombstone-age, manual).
	BytesWritten      int64            `json:"bytes_written"`
	WriteByReason     map[string]int64 `json:"write_by_reason,omitempty"`
	CompactionBytesIn int64            `json:"compaction_bytes_in"`
}

// WorkloadProfile is the engine's measured view of its recent workload
// and cost: the input the paper's workload-aware tuning (Monkey,
// Endure) assumes, produced live. All windowed fields cover the last
// one to two profile half-lives (Options.ProfileWindowOps).
type WorkloadProfile struct {
	Enabled   bool   `json:"enabled"`
	WindowOps int64  `json:"window_ops"` // sampled-weight ops in the window
	Rotations uint64 `json:"rotations"`

	// Operation mix over the window (exact counts from engine metrics).
	Gets    int64 `json:"gets"`
	Puts    int64 `json:"puts"`
	Deletes int64 `json:"deletes"`
	Scans   int64 `json:"scans"`
	// ScanEntries and MeanScanLen describe range-scan shape.
	ScanEntries int64   `json:"scan_entries"`
	MeanScanLen float64 `json:"mean_scan_len"`
	// IngestedBytes is user key+value bytes accepted over the window.
	IngestedBytes int64 `json:"ingested_bytes"`

	// Key-distribution estimates from the sketches.
	DistinctKeys int64            `json:"distinct_keys"`
	TopKeys      []sketch.HotKey  `json:"top_keys,omitempty"`
	TopShare     float64          `json:"top_share"` // share of traffic on TopKeys
	ZipfS        float64          `json:"zipf_s"`    // fitted zipf exponent (0 ≈ uniform)
	Tenants      []TenantWorkload `json:"tenants,omitempty"`

	// The measured RUM point over the window.
	ReadAmp  float64 `json:"read_amp"`  // runs probed per point lookup
	WriteAmp float64 `json:"write_amp"` // (flush+compaction bytes) / ingested bytes
	SpaceAmp float64 `json:"space_amp"` // total tree bytes / deepest-level bytes (gauge)
	// SpaceBytesTotal/Deepest are SpaceAmp's terms, kept so sharded
	// aggregation can recompute the ratio exactly.
	SpaceBytesTotal   int64 `json:"space_bytes_total"`
	SpaceBytesDeepest int64 `json:"space_bytes_deepest"`

	Levels []LevelProfile `json:"levels,omitempty"`
}

// WorkloadProfile reports the live workload characterization and
// per-level RUM attribution. With the profiler disabled it returns a
// zero profile with Enabled=false.
func (db *DB) WorkloadProfile() WorkloadProfile {
	p := db.prof
	if p == nil {
		return WorkloadProfile{}
	}
	base := p.baseline()
	cur := p.snapNow()
	w := cur.m.Sub(base.m)

	wp := WorkloadProfile{
		Enabled:       true,
		WindowOps:     int64(p.win.Total()),
		Rotations:     p.win.Rotations(),
		Gets:          w.Gets,
		Puts:          w.Puts,
		Deletes:       w.Deletes,
		Scans:         w.Scans,
		ScanEntries:   w.ScanEntries,
		IngestedBytes: w.BytesIngested,
		DistinctKeys:  int64(p.win.Distinct()),
		TopKeys:       p.win.Top(profTopK),
		Tenants:       p.tenants.rows(),
	}
	if wp.Scans > 0 {
		wp.MeanScanLen = float64(wp.ScanEntries) / float64(wp.Scans)
	}
	if total := p.win.Total(); total > 0 {
		var mass uint64
		for _, hk := range wp.TopKeys {
			mass += hk.Count
		}
		wp.TopShare = float64(mass) / float64(total)
	}
	wp.ZipfS = fitZipf(wp.TopKeys)

	wp.ReadAmp = w.ReadAmplification()
	wp.WriteAmp = w.WriteAmplification()

	ts := db.TreeStats()
	var total, deepest int64
	for _, ls := range ts.Levels {
		total += int64(ls.Bytes)
		// The denominator is the deepest *non-empty* level: in a young
		// tree nothing has reached the last level yet, and an all-L0
		// tree has space amplification 1, not infinity.
		if ls.Bytes > 0 {
			deepest = int64(ls.Bytes)
		}
	}
	wp.SpaceBytesTotal, wp.SpaceBytesDeepest = total, deepest
	if deepest > 0 {
		wp.SpaceAmp = float64(total) / float64(deepest)
	}

	wp.Levels = make([]LevelProfile, len(cur.levels))
	for i := range cur.levels {
		var baseL levelIOSnap
		if i < len(base.levels) {
			baseL = base.levels[i]
		}
		d := cur.levels[i].sub(baseL)
		lp := LevelProfile{
			Level:             i,
			RunsProbed:        d.runsProbed,
			BlockReads:        d.blockReads,
			BlockReadsCached:  d.blockReadsCached,
			BytesRead:         d.readBytes,
			CompactionBytesIn: d.compactionIn,
		}
		if i < len(ts.Levels) {
			lp.LiveRuns = ts.Levels[i].Runs
		}
		if wp.Gets > 0 {
			lp.ReadAmp = float64(d.runsProbed) / float64(wp.Gets)
		}
		for r, b := range d.writeBytes {
			lp.BytesWritten += b
			if b > 0 {
				if lp.WriteByReason == nil {
					lp.WriteByReason = make(map[string]int64)
				}
				lp.WriteByReason[reasonNames[r]] += b
			}
		}
		wp.Levels[i] = lp
	}
	return wp
}

// fitZipf least-squares fits log(count) = -s*log(rank) + c over the
// top-K and returns s: ~0 for uniform traffic, ~1 for a classic
// zipfian head. Needs at least three ranks to be meaningful.
func fitZipf(top []sketch.HotKey) float64 {
	n := 0
	var sx, sy, sxx, sxy float64
	for i, hk := range top {
		if hk.Count == 0 {
			break
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(hk.Count))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 3 {
		return 0
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0
	}
	s := -(float64(n)*sxy - sx*sy) / den
	if s < 0 {
		s = 0
	}
	return s
}

// MergeProfiles aggregates per-shard profiles into one partition-level
// view: counts and level attribution sum; distinct keys sum (shards
// hash-partition the key space, so shard key sets are disjoint); top
// keys merge by summed count; the RUM ratios are recomputed from the
// summed terms.
func MergeProfiles(ps []WorkloadProfile) WorkloadProfile {
	var out WorkloadProfile
	topByKey := map[string]sketch.HotKey{}
	tenByName := map[string]*TenantWorkload{}
	var runsProbed, flushPlusCompaction int64
	var topMassDen int64
	for _, p := range ps {
		if !p.Enabled {
			continue
		}
		out.Enabled = true
		out.WindowOps += p.WindowOps
		if p.Rotations > out.Rotations {
			out.Rotations = p.Rotations
		}
		out.Gets += p.Gets
		out.Puts += p.Puts
		out.Deletes += p.Deletes
		out.Scans += p.Scans
		out.ScanEntries += p.ScanEntries
		out.IngestedBytes += p.IngestedBytes
		out.DistinctKeys += p.DistinctKeys
		out.SpaceBytesTotal += p.SpaceBytesTotal
		out.SpaceBytesDeepest += p.SpaceBytesDeepest
		topMassDen += p.WindowOps
		for _, hk := range p.TopKeys {
			have := topByKey[hk.Key]
			have.Key = hk.Key
			have.Count += hk.Count
			have.Err += hk.Err
			topByKey[hk.Key] = have
		}
		for _, t := range p.Tenants {
			if have := tenByName[t.Tenant]; have != nil {
				have.Gets += t.Gets
				have.Puts += t.Puts
				have.Deletes += t.Deletes
				have.Scans += t.Scans
				have.Ops += t.Ops
			} else {
				tc := t
				tenByName[t.Tenant] = &tc
			}
		}
		for _, lp := range p.Levels {
			for len(out.Levels) <= lp.Level {
				out.Levels = append(out.Levels, LevelProfile{Level: len(out.Levels)})
			}
			o := &out.Levels[lp.Level]
			o.LiveRuns += lp.LiveRuns
			o.RunsProbed += lp.RunsProbed
			o.BlockReads += lp.BlockReads
			o.BlockReadsCached += lp.BlockReadsCached
			o.BytesRead += lp.BytesRead
			o.BytesWritten += lp.BytesWritten
			o.CompactionBytesIn += lp.CompactionBytesIn
			for r, b := range lp.WriteByReason {
				if o.WriteByReason == nil {
					o.WriteByReason = make(map[string]int64)
				}
				o.WriteByReason[r] += b
			}
			runsProbed += lp.RunsProbed
			flushPlusCompaction += lp.BytesWritten
		}
	}
	if !out.Enabled {
		return out
	}
	if out.Scans > 0 {
		out.MeanScanLen = float64(out.ScanEntries) / float64(out.Scans)
	}
	out.TopKeys = make([]sketch.HotKey, 0, len(topByKey))
	for _, hk := range topByKey {
		out.TopKeys = append(out.TopKeys, hk)
	}
	sort.Slice(out.TopKeys, func(i, j int) bool {
		if out.TopKeys[i].Count != out.TopKeys[j].Count {
			return out.TopKeys[i].Count > out.TopKeys[j].Count
		}
		return out.TopKeys[i].Key < out.TopKeys[j].Key
	})
	if len(out.TopKeys) > profTopK {
		out.TopKeys = out.TopKeys[:profTopK]
	}
	if topMassDen > 0 {
		var mass uint64
		for _, hk := range out.TopKeys {
			mass += hk.Count
		}
		out.TopShare = float64(mass) / float64(topMassDen)
	}
	out.ZipfS = fitZipf(out.TopKeys)
	out.Tenants = make([]TenantWorkload, 0, len(tenByName))
	for _, t := range tenByName {
		out.Tenants = append(out.Tenants, *t)
	}
	sort.Slice(out.Tenants, func(i, j int) bool {
		if out.Tenants[i].Ops != out.Tenants[j].Ops {
			return out.Tenants[i].Ops > out.Tenants[j].Ops
		}
		return out.Tenants[i].Tenant < out.Tenants[j].Tenant
	})
	for i := range out.Levels {
		if out.Gets > 0 {
			out.Levels[i].ReadAmp = float64(out.Levels[i].RunsProbed) / float64(out.Gets)
		}
	}
	if out.Gets > 0 {
		out.ReadAmp = float64(runsProbed) / float64(out.Gets)
	}
	if out.IngestedBytes > 0 {
		out.WriteAmp = float64(flushPlusCompaction) / float64(out.IngestedBytes)
	}
	if out.SpaceBytesDeepest > 0 {
		out.SpaceAmp = float64(out.SpaceBytesTotal) / float64(out.SpaceBytesDeepest)
	}
	return out
}
