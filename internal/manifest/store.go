package manifest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged manifest.
var ErrCorrupt = errors.New("manifest: corrupt")

// State is everything the engine must recover after a crash: the tree
// structure, the file-number allocator, and the sequence-number
// allocator.
type State struct {
	Version     *Version
	NextFileNum uint64
	LastSeq     kv.SeqNum
}

// encodeState serializes a full state snapshot.
func encodeState(s *State) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, s.NextFileNum)
	buf = binary.AppendUvarint(buf, uint64(s.LastSeq))
	buf = binary.AppendUvarint(buf, uint64(len(s.Version.Levels)))
	for _, l := range s.Version.Levels {
		buf = binary.AppendUvarint(buf, uint64(len(l.Runs)))
		for _, r := range l.Runs {
			buf = binary.AppendUvarint(buf, uint64(len(r.Files)))
			for _, f := range r.Files {
				buf = binary.AppendUvarint(buf, f.Num)
				buf = binary.AppendUvarint(buf, f.Size)
				buf = appendBytes(buf, f.Smallest)
				buf = appendBytes(buf, f.Largest)
				buf = binary.AppendUvarint(buf, uint64(f.SmallestSeq))
				buf = binary.AppendUvarint(buf, uint64(f.LargestSeq))
				buf = binary.AppendUvarint(buf, f.NumEntries)
				buf = binary.AppendUvarint(buf, f.NumTombstones)
				buf = binary.AppendUvarint(buf, f.NumRangeDels)
				buf = binary.AppendVarint(buf, f.OldestTombstoneNs)
			}
		}
	}
	return buf
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = ErrCorrupt
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = ErrCorrupt
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	l := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if d.off+l > len(d.buf) {
		d.err = ErrCorrupt
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+l]...)
	d.off += l
	return b
}

func decodeState(buf []byte) (*State, error) {
	d := &decoder{buf: buf}
	s := &State{}
	s.NextFileNum = d.uvarint()
	s.LastSeq = kv.SeqNum(d.uvarint())
	nLevels := int(d.uvarint())
	if d.err != nil || nLevels > 64 {
		return nil, ErrCorrupt
	}
	s.Version = NewVersion(nLevels)
	for li := 0; li < nLevels; li++ {
		nRuns := int(d.uvarint())
		for ri := 0; ri < nRuns; ri++ {
			nFiles := int(d.uvarint())
			r := &Run{}
			for fi := 0; fi < nFiles; fi++ {
				f := &FileMeta{
					Num:      d.uvarint(),
					Size:     d.uvarint(),
					Smallest: d.bytes(),
					Largest:  d.bytes(),
				}
				f.SmallestSeq = kv.SeqNum(d.uvarint())
				f.LargestSeq = kv.SeqNum(d.uvarint())
				f.NumEntries = d.uvarint()
				f.NumTombstones = d.uvarint()
				f.NumRangeDels = d.uvarint()
				f.OldestTombstoneNs = d.varint()
				r.Files = append(r.Files, f)
			}
			if d.err != nil {
				return nil, d.err
			}
			s.Version.Levels[li].Runs = append(s.Version.Levels[li].Runs, r)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// Store persists states to an append-only manifest file. Each commit
// appends a complete CRC-framed snapshot; recovery replays the file and
// keeps the last valid snapshot, so a torn final write simply falls
// back to the previous state. When the file grows past rewriteAt, it is
// compacted to a single snapshot via write-temp-then-rename.
type Store struct {
	fs        vfs.FS
	path      string
	f         vfs.File
	size      int64
	rewriteAt int64
	// dirty means a Commit failed partway: the file may end in a torn
	// frame that replayLast tolerates but further appends would land
	// after, making them invisible to recovery. The next Commit heals by
	// rewriting from scratch instead of appending.
	dirty bool
}

// DefaultRewriteThreshold is the manifest size that triggers a rewrite.
const DefaultRewriteThreshold = 4 << 20

// OpenStore opens (or creates) the manifest at path and returns the
// recovered state; state is nil if the manifest did not exist or held
// no valid snapshot.
func OpenStore(fs vfs.FS, path string) (*Store, *State, error) {
	st := &Store{fs: fs, path: path, rewriteAt: DefaultRewriteThreshold}
	// A stale temp file means a previous rewrite crashed between Create
	// and Rename; the manifest itself is still authoritative.
	if fs.Exists(path + ".tmp") {
		fs.Remove(path + ".tmp")
	}
	var recovered *State
	if fs.Exists(path) {
		f, err := fs.Open(path)
		if err != nil {
			return nil, nil, err
		}
		recovered, err = replayLast(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	// Re-open for appending by rewriting the recovered snapshot: this
	// both truncates any torn tail and starts a fresh append handle.
	if err := st.rewrite(recovered); err != nil {
		return nil, nil, err
	}
	return st, recovered, nil
}

// replayLast scans the append-only manifest and returns the last valid
// snapshot, ignoring a torn tail.
func replayLast(f vfs.File) (*State, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	var off int64
	var last *State
	hdr := make([]byte, 8)
	for off+8 <= size {
		if _, err := f.ReadAt(hdr, off); err != nil && err != io.EOF {
			return nil, err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if off+8+length > size {
			break // torn tail
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+8); err != nil && err != io.EOF {
			return nil, err
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			break // torn or corrupt tail: stop at last good snapshot
		}
		s, err := decodeState(payload)
		if err != nil {
			break
		}
		last = s
		off += 8 + length
	}
	return last, nil
}

// Commit durably appends a snapshot of s. After a failed Commit the
// store self-heals: the next Commit rewrites the whole manifest (write-
// temp-then-rename) instead of appending past a possibly torn frame.
func (st *Store) Commit(s *State) error {
	if st.f == nil || st.dirty {
		// Either a rewrite failed after closing the old handle, or a prior
		// append tore. A full rewrite reestablishes the invariant that the
		// file ends in a valid snapshot.
		if err := st.rewrite(s); err != nil {
			return err
		}
		st.dirty = false
		return nil
	}
	payload := encodeState(s)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	if _, err := st.f.Write(frame); err != nil {
		st.dirty = true
		return err
	}
	if err := st.f.Sync(); err != nil {
		st.dirty = true
		return err
	}
	st.size += int64(len(frame))
	if st.size > st.rewriteAt {
		return st.rewrite(s)
	}
	return nil
}

// rewrite compacts the manifest to a single snapshot (or truncates it
// when s is nil) using write-temp-then-rename, then re-opens an append
// handle on the renamed file.
func (st *Store) rewrite(s *State) error {
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	tmp := st.path + ".tmp"
	f, err := st.fs.Create(tmp)
	if err != nil {
		return err
	}
	var written int64
	if s != nil {
		payload := encodeState(s)
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		copy(frame[8:], payload)
		if _, err := f.Write(frame); err != nil {
			f.Close()
			return err
		}
		written = int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := st.fs.Rename(tmp, st.path); err != nil {
		return err
	}
	if st.f, err = st.fs.Append(st.path); err != nil {
		return err
	}
	st.size = written
	return nil
}

// Verify checks the manifest at path: every complete frame must carry
// a valid checksum and decode, and at least one valid snapshot must
// exist. An incomplete trailing frame is tolerated (that is the torn
// tail recovery is designed to discard), but a complete frame with a
// bad CRC or undecodable payload is corruption — recovery would
// silently fall back to an older state, losing committed structure.
func Verify(fs vfs.FS, path string) error {
	if !fs.Exists(path) {
		return fmt.Errorf("%w: missing manifest %s", ErrCorrupt, path)
	}
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	var off int64
	valid := 0
	hdr := make([]byte, 8)
	for off+8 <= size {
		if _, err := f.ReadAt(hdr, off); err != nil && err != io.EOF {
			return err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if off+8+length > size {
			break // torn tail: tolerated
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+8); err != nil && err != io.EOF {
			return err
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return fmt.Errorf("%w: bad frame checksum at offset %d", ErrCorrupt, off)
		}
		if _, err := decodeState(payload); err != nil {
			return fmt.Errorf("%w: undecodable frame at offset %d", ErrCorrupt, off)
		}
		valid++
		off += 8 + length
	}
	if valid == 0 {
		return fmt.Errorf("%w: no valid snapshot in %s", ErrCorrupt, path)
	}
	return nil
}

// Close releases the manifest file handle.
func (st *Store) Close() error {
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

// FileName formats the on-disk name for a table file.
func FileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// WALName formats the on-disk name for a write-ahead log file.
func WALName(num uint64) string { return fmt.Sprintf("%06d.wal", num) }

// VLogName formats the on-disk name for a WiscKey value-log file.
func VLogName(num uint64) string { return fmt.Sprintf("%06d.vlog", num) }
