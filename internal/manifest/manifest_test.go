package manifest

import (
	"errors"
	"fmt"
	"testing"

	"lsmlab/internal/kv"
	"lsmlab/internal/vfs"
	"lsmlab/internal/vfs/faultfs"
)

func fm(num uint64, smallest, largest string, size uint64) *FileMeta {
	return &FileMeta{
		Num: num, Size: size,
		Smallest: []byte(smallest), Largest: []byte(largest),
		NumEntries: size / 10,
	}
}

func TestRunFindFile(t *testing.T) {
	r := &Run{Files: []*FileMeta{
		fm(1, "a", "c", 100),
		fm(2, "e", "g", 100),
		fm(3, "i", "k", 100),
	}}
	for _, c := range []struct {
		key  string
		want uint64 // 0 = not found
	}{
		{"a", 1}, {"b", 1}, {"c", 1},
		{"d", 0},
		{"e", 2}, {"g", 2},
		{"h", 0},
		{"k", 3},
		{"z", 0},
		{"A", 0},
	} {
		f := r.FindFile([]byte(c.key))
		var got uint64
		if f != nil {
			got = f.Num
		}
		if got != c.want {
			t.Errorf("FindFile(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestRunOverlappingAndAggregates(t *testing.T) {
	r := &Run{Files: []*FileMeta{fm(1, "a", "c", 100), fm(2, "e", "g", 200)}}
	if got := len(r.Overlapping(kv.KeyRange{Smallest: []byte("b"), Largest: []byte("f")})); got != 2 {
		t.Errorf("overlap both: %d", got)
	}
	if got := len(r.Overlapping(kv.KeyRange{Smallest: []byte("d"), Largest: []byte("d")})); got != 0 {
		t.Errorf("overlap gap: %d", got)
	}
	if r.Size() != 300 {
		t.Errorf("size %d", r.Size())
	}
	kr := r.KeyRange()
	if string(kr.Smallest) != "a" || string(kr.Largest) != "g" {
		t.Errorf("range %q..%q", kr.Smallest, kr.Largest)
	}
}

func TestVersionPushRunIsImmutable(t *testing.T) {
	v1 := NewVersion(3)
	v2 := v1.PushRun(0, &Run{Files: []*FileMeta{fm(1, "a", "z", 100)}})
	if len(v1.Levels[0].Runs) != 0 {
		t.Error("PushRun mutated the original version")
	}
	if len(v2.Levels[0].Runs) != 1 {
		t.Error("PushRun missing run")
	}
	v3 := v2.PushRun(0, &Run{Files: []*FileMeta{fm(2, "a", "z", 100)}})
	// Newest run must be first.
	if v3.Levels[0].Runs[0].Files[0].Num != 2 {
		t.Error("newest run must be Runs[0]")
	}
}

func TestVersionReplaceRuns(t *testing.T) {
	v := NewVersion(3)
	v = v.PushRun(0, &Run{Files: []*FileMeta{fm(1, "a", "m", 100)}})
	v = v.PushRun(0, &Run{Files: []*FileMeta{fm(2, "n", "z", 100)}})
	v = v.PushRun(1, &Run{Files: []*FileMeta{fm(3, "a", "k", 500), fm(4, "l", "z", 500)}})

	// Compact file 1 (L0) with file 3 (L1) into new file 5 at L1.
	nv := v.ReplaceRuns(map[int][]uint64{0: {1}, 1: {3}}, 1, &Run{Files: []*FileMeta{fm(5, "a", "m", 550)}})
	if got := nv.Levels[0].NumFiles(); got != 1 {
		t.Errorf("L0 files %d", got)
	}
	if nv.Levels[0].Runs[0].Files[0].Num != 2 {
		t.Error("wrong L0 survivor")
	}
	// L1 keeps file 4 (in its partially-surviving run) plus new run with 5.
	nums := map[uint64]bool{}
	for _, r := range nv.Levels[1].Runs {
		for _, f := range r.Files {
			nums[f.Num] = true
		}
	}
	if !nums[4] || !nums[5] || nums[3] {
		t.Errorf("L1 files %v", nums)
	}
	// Original untouched.
	if v.TotalFiles() != 4 {
		t.Error("ReplaceRuns mutated original")
	}
}

func TestVersionReplaceRunsNilNewRun(t *testing.T) {
	v := NewVersion(2)
	v = v.PushRun(0, &Run{Files: []*FileMeta{fm(1, "a", "z", 100)}})
	nv := v.ReplaceRuns(map[int][]uint64{0: {1}}, 1, nil)
	if nv.TotalFiles() != 0 || len(nv.Levels[0].Runs) != 0 {
		t.Error("pure deletion failed")
	}
}

func TestVersionAggregates(t *testing.T) {
	v := NewVersion(3)
	v = v.PushRun(0, &Run{Files: []*FileMeta{fm(1, "a", "c", 100)}})
	v = v.PushRun(1, &Run{Files: []*FileMeta{fm(2, "a", "c", 300), fm(3, "d", "f", 300)}})
	if v.TotalSize() != 700 || v.TotalFiles() != 3 || v.NumRuns() != 2 {
		t.Errorf("aggregates: size=%d files=%d runs=%d", v.TotalSize(), v.TotalFiles(), v.NumRuns())
	}
	live := v.LiveFileNums()
	if len(live) != 3 || !live[1] || !live[2] || !live[3] {
		t.Errorf("live %v", live)
	}
	epr := v.EntriesPerRun()
	if len(epr) != 2 || epr[0] != 10 || epr[1] != 60 {
		t.Errorf("entries per run %v", epr)
	}
}

func TestVersionCheck(t *testing.T) {
	good := NewVersion(2)
	good = good.PushRun(0, &Run{Files: []*FileMeta{fm(1, "a", "c", 1), fm(2, "d", "f", 1)}})
	if err := good.Check(); err != nil {
		t.Errorf("good version: %v", err)
	}
	bad := NewVersion(2)
	bad = bad.PushRun(0, &Run{Files: []*FileMeta{fm(1, "a", "e", 1), fm(2, "d", "f", 1)}})
	if err := bad.Check(); err == nil {
		t.Error("overlapping files undetected")
	}
	inv := NewVersion(1)
	inv = inv.PushRun(0, &Run{Files: []*FileMeta{fm(1, "z", "a", 1)}})
	if err := inv.Check(); err == nil {
		t.Error("inverted bounds undetected")
	}
}

func TestTombstoneDensity(t *testing.T) {
	f := &FileMeta{NumEntries: 100, NumTombstones: 25, NumRangeDels: 25}
	if f.TombstoneDensity() != 0.5 {
		t.Errorf("density %v", f.TombstoneDensity())
	}
	empty := &FileMeta{}
	if empty.TombstoneDensity() != 0 {
		t.Error("empty density")
	}
	rdOnly := &FileMeta{NumRangeDels: 1}
	if rdOnly.TombstoneDensity() != 1 {
		t.Error("rangedel-only density")
	}
}

func makeState(nFiles int) *State {
	v := NewVersion(4)
	for i := 0; i < nFiles; i++ {
		f := fm(uint64(i+1), fmt.Sprintf("k%03d", i*10), fmt.Sprintf("k%03d", i*10+5), 1000)
		f.SmallestSeq = kv.SeqNum(i)
		f.LargestSeq = kv.SeqNum(i + 100)
		f.NumTombstones = 3
		f.OldestTombstoneNs = int64(i * 1e9)
		v = v.PushRun(i%4, &Run{Files: []*FileMeta{f}})
	}
	return &State{Version: v, NextFileNum: uint64(nFiles + 1), LastSeq: 999}
}

func statesEqual(a, b *State) bool {
	if a.NextFileNum != b.NextFileNum || a.LastSeq != b.LastSeq {
		return false
	}
	if len(a.Version.Levels) != len(b.Version.Levels) {
		return false
	}
	for i := range a.Version.Levels {
		la, lb := a.Version.Levels[i], b.Version.Levels[i]
		if len(la.Runs) != len(lb.Runs) {
			return false
		}
		for j := range la.Runs {
			fa, fb := la.Runs[j].Files, lb.Runs[j].Files
			if len(fa) != len(fb) {
				return false
			}
			for k := range fa {
				x, y := fa[k], fb[k]
				if x.Num != y.Num || x.Size != y.Size ||
					string(x.Smallest) != string(y.Smallest) ||
					string(x.Largest) != string(y.Largest) ||
					x.SmallestSeq != y.SmallestSeq || x.LargestSeq != y.LargestSeq ||
					x.NumEntries != y.NumEntries || x.NumTombstones != y.NumTombstones ||
					x.NumRangeDels != y.NumRangeDels || x.OldestTombstoneNs != y.OldestTombstoneNs {
					return false
				}
			}
		}
	}
	return true
}

func TestStoreCommitRecover(t *testing.T) {
	fs := vfs.NewMem()
	st, rec, err := OpenStore(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("fresh store must recover nil")
	}
	want := makeState(7)
	if err := st.Commit(want); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec2, err := OpenStore(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2 == nil || !statesEqual(want, rec2) {
		t.Fatal("recovered state differs")
	}
}

func TestStoreRecoversLatestCommit(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := OpenStore(fs, "MANIFEST")
	for i := 1; i <= 5; i++ {
		if err := st.Commit(makeState(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	_, rec, err := OpenStore(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(makeState(5), rec) {
		t.Fatal("did not recover the newest snapshot")
	}
}

func TestStoreTornTailFallsBack(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := OpenStore(fs, "MANIFEST")
	st.Commit(makeState(2))
	st.Commit(makeState(3))
	st.Close()

	// Truncate the file mid-way through the last record.
	f, _ := fs.Open("MANIFEST")
	sz, _ := f.Size()
	data := make([]byte, sz-5)
	f.ReadAt(data, 0)
	f.Close()
	g, _ := fs.Create("MANIFEST")
	g.Write(data)
	g.Close()

	_, rec, err := OpenStore(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || !statesEqual(makeState(2), rec) {
		t.Fatal("torn tail should fall back to previous snapshot")
	}
}

func TestStoreRewriteCompacts(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := OpenStore(fs, "MANIFEST")
	st.rewriteAt = 1 // force a rewrite on every commit
	for i := 1; i <= 10; i++ {
		if err := st.Commit(makeState(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	f, _ := fs.Open("MANIFEST")
	sz, _ := f.Size()
	f.Close()
	// After rewrite the manifest holds exactly one snapshot.
	_, rec, err := OpenStore(fs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(makeState(10), rec) {
		t.Fatal("rewrite lost state")
	}
	single := int64(len(encodeState(makeState(10))) + 8)
	if sz != single {
		t.Errorf("manifest %d bytes, want single snapshot %d", sz, single)
	}
}

func TestFileNames(t *testing.T) {
	if FileName(7) != "000007.sst" || WALName(7) != "000007.wal" || VLogName(7) != "000007.vlog" {
		t.Error("file name formats")
	}
}

func TestEmptyVersionState(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := OpenStore(fs, "M")
	want := &State{Version: NewVersion(5), NextFileNum: 1, LastSeq: 0}
	st.Commit(want)
	st.Close()
	_, rec, err := OpenStore(fs, "M")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Version.NumLevels() != 5 || rec.Version.TotalFiles() != 0 {
		t.Fatal("empty version roundtrip")
	}
}

// TestStoreTornAppendHeals covers the dirty-commit recovery: after a
// failed append the store must not keep appending past a possibly torn
// frame (replay would silently ignore everything after it) — the next
// Commit rewrites the manifest from scratch.
func TestStoreTornAppendHeals(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	st, _, err := OpenStore(ffs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(makeState(1)); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(faultfs.ClassManifest, faultfs.OpWrite, 1)
	if err := st.Commit(makeState(2)); err == nil {
		t.Fatal("commit with failing device must error")
	}
	// Device healed: the next commit must land durably and readably.
	if err := st.Commit(makeState(3)); err != nil {
		t.Fatalf("post-failure commit did not heal: %v", err)
	}
	st.Close()
	_, rec, err := OpenStore(base, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || !statesEqual(makeState(3), rec) {
		t.Fatal("healed commit not recovered")
	}
}

// TestStoreTornRenameRecovers crashes the write-temp-then-rename swap
// at the rename: the store must keep the previous manifest authoritative
// (recovery sees the last committed state), remove the stale temp file
// on reopen, and — without a crash — heal on the next Commit.
func TestStoreTornRenameRecovers(t *testing.T) {
	base := vfs.NewMem()
	ffs := faultfs.New(base, 1)
	st, _, err := OpenStore(ffs, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	st.rewriteAt = 1 // every commit rewrites via temp+rename
	if err := st.Commit(makeState(1)); err != nil {
		t.Fatal(err)
	}
	ffs.Arm(faultfs.ClassManifest, faultfs.OpRename, 1)
	if err := st.Commit(makeState(2)); err == nil {
		t.Fatal("commit with failing rename must error")
	}

	// Crash here: the manifest is still authoritative — the append that
	// preceded the rewrite already made state 2 durable, and the failed
	// swap must neither corrupt it nor roll it back. The stale temp file
	// must be cleaned up.
	_, rec, err := OpenStore(base, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || !statesEqual(makeState(2), rec) {
		t.Fatal("torn rename corrupted the committed state")
	}
	if base.Exists("MANIFEST.tmp") {
		t.Fatal("stale temp manifest survived reopen")
	}

	// No crash: the same store heals on the next commit.
	if err := st.Commit(makeState(3)); err != nil {
		t.Fatalf("commit after torn rename did not heal: %v", err)
	}
	st.Close()
	_, rec2, err := OpenStore(base, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == nil || !statesEqual(makeState(3), rec2) {
		t.Fatal("healed state not recovered after torn rename")
	}
}

func TestVerifyManifest(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := OpenStore(fs, "MANIFEST")
	st.Commit(makeState(1))
	st.Commit(makeState(2))
	st.Close()
	if err := Verify(fs, "MANIFEST"); err != nil {
		t.Fatalf("clean manifest flagged: %v", err)
	}

	// A torn tail is tolerated: that is exactly what recovery discards.
	f, _ := fs.Open("MANIFEST")
	sz, _ := f.Size()
	data := make([]byte, sz)
	f.ReadAt(data, 0)
	f.Close()
	g, _ := fs.Create("MANIFEST")
	g.Write(data[:sz-5])
	g.Close()
	if err := Verify(fs, "MANIFEST"); err != nil {
		t.Fatalf("torn tail flagged as corruption: %v", err)
	}

	// A flipped byte inside a complete frame is corruption: recovery
	// would silently fall back to an older snapshot.
	data[12] ^= 0x40
	g, _ = fs.Create("MANIFEST")
	g.Write(data)
	g.Close()
	if err := Verify(fs, "MANIFEST"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not flagged: %v", err)
	}

	if err := Verify(fs, "NOPE"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing manifest not flagged: %v", err)
	}
}
