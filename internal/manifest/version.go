// Package manifest tracks the structure of the LSM-tree on disk: which
// immutable files exist, how they are grouped into sorted runs, and how
// runs are stacked into levels. It also persists this structure (plus
// the next file number and last sequence number) crash-safely, so that
// reopening a store recovers exactly the tree that was last committed
// (tutorial §2.1.1 C/D: immutable files and layout re-organization).
//
// The version model is general enough for every data layout in the
// tutorial's design space: a leveled level has one run; a tiered level
// has up to K overlapping runs; hybrid layouts mix both per level.
package manifest

import (
	"bytes"
	"fmt"

	"lsmlab/internal/kv"
)

// FileMeta describes one immutable table file.
type FileMeta struct {
	Num               uint64 // file number (names the file on disk)
	Size              uint64 // bytes
	Smallest          []byte // smallest user key (inclusive)
	Largest           []byte // largest user key (inclusive)
	SmallestSeq       kv.SeqNum
	LargestSeq        kv.SeqNum
	NumEntries        uint64
	NumTombstones     uint64
	NumRangeDels      uint64
	OldestTombstoneNs int64 // FADE: creation time of the file's oldest tombstone
}

// KeyRange returns the file's inclusive user-key range.
func (f *FileMeta) KeyRange() kv.KeyRange {
	return kv.KeyRange{Smallest: f.Smallest, Largest: f.Largest}
}

// TombstoneDensity is the fraction of the file's entries that are
// tombstones, used by delete-aware compaction picking.
func (f *FileMeta) TombstoneDensity() float64 {
	if f.NumEntries == 0 {
		if f.NumRangeDels > 0 {
			return 1
		}
		return 0
	}
	return float64(f.NumTombstones+f.NumRangeDels) / float64(f.NumEntries)
}

func (f *FileMeta) String() string {
	return fmt.Sprintf("#%d[%q..%q]%dB", f.Num, f.Smallest, f.Largest, f.Size)
}

// Run is one sorted run: files ordered by Smallest with pairwise
// non-overlapping key ranges. A flush produces a single-file run; a
// leveled level is exactly one (possibly multi-file) run.
type Run struct {
	Files []*FileMeta
}

// Size returns the run's total bytes.
func (r *Run) Size() uint64 {
	var s uint64
	for _, f := range r.Files {
		s += f.Size
	}
	return s
}

// NumEntries returns the run's total entry count.
func (r *Run) NumEntries() uint64 {
	var n uint64
	for _, f := range r.Files {
		n += f.NumEntries
	}
	return n
}

// KeyRange returns the run's overall key range (nil bounds if empty).
func (r *Run) KeyRange() kv.KeyRange {
	var kr kv.KeyRange
	for _, f := range r.Files {
		kr.Extend(f.Smallest)
		kr.Extend(f.Largest)
	}
	return kr
}

// FindFile returns the file that may contain ukey, or nil. Files are
// sorted and non-overlapping, so binary search applies.
func (r *Run) FindFile(ukey []byte) *FileMeta {
	lo, hi := 0, len(r.Files)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(r.Files[mid].Largest, ukey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.Files) && bytes.Compare(r.Files[lo].Smallest, ukey) <= 0 {
		return r.Files[lo]
	}
	return nil
}

// Overlapping returns the files whose key range intersects kr, in key
// order.
func (r *Run) Overlapping(kr kv.KeyRange) []*FileMeta {
	var out []*FileMeta
	for _, f := range r.Files {
		if f.KeyRange().Overlaps(kr) {
			out = append(out, f)
		}
	}
	return out
}

// Level is a stack of runs, newest first: Runs[0] is the most recently
// produced run. A leveled level has at most one run; a tiered level
// accumulates several before compaction merges them.
type Level struct {
	Runs []*Run
}

// Size returns the level's total bytes.
func (l *Level) Size() uint64 {
	var s uint64
	for _, r := range l.Runs {
		s += r.Size()
	}
	return s
}

// NumFiles returns the number of files in the level.
func (l *Level) NumFiles() int {
	n := 0
	for _, r := range l.Runs {
		n += len(r.Files)
	}
	return n
}

// Version is an immutable snapshot of the tree structure. Methods that
// "modify" a version return a new one (versions are copy-on-write at
// run granularity), so readers iterate a stable structure while
// flushes and compactions install successors.
type Version struct {
	Levels []*Level
}

// NewVersion returns an empty version with the given number of levels.
func NewVersion(numLevels int) *Version {
	v := &Version{Levels: make([]*Level, numLevels)}
	for i := range v.Levels {
		v.Levels[i] = &Level{}
	}
	return v
}

// Clone returns a deep copy of the level/run structure (file metas are
// shared; they are immutable once created).
func (v *Version) Clone() *Version {
	nv := &Version{Levels: make([]*Level, len(v.Levels))}
	for i, l := range v.Levels {
		nl := &Level{Runs: make([]*Run, len(l.Runs))}
		for j, r := range l.Runs {
			nr := &Run{Files: append([]*FileMeta(nil), r.Files...)}
			nl.Runs[j] = nr
		}
		nv.Levels[i] = nl
	}
	return nv
}

// NumLevels returns the number of levels.
func (v *Version) NumLevels() int { return len(v.Levels) }

// TotalSize returns the tree's total bytes.
func (v *Version) TotalSize() uint64 {
	var s uint64
	for _, l := range v.Levels {
		s += l.Size()
	}
	return s
}

// TotalFiles returns the number of files across all levels.
func (v *Version) TotalFiles() int {
	n := 0
	for _, l := range v.Levels {
		n += l.NumFiles()
	}
	return n
}

// NumRuns returns the total number of sorted runs — the quantity that
// bounds worst-case point-lookup probes.
func (v *Version) NumRuns() int {
	n := 0
	for _, l := range v.Levels {
		n += len(l.Runs)
	}
	return n
}

// LiveFileNums returns the set of file numbers referenced by the
// version, used for garbage collection of obsolete files.
func (v *Version) LiveFileNums() map[uint64]bool {
	live := make(map[uint64]bool)
	for _, l := range v.Levels {
		for _, r := range l.Runs {
			for _, f := range r.Files {
				live[f.Num] = true
			}
		}
	}
	return live
}

// EntriesPerRun lists every run's entry count, shallow levels first —
// the input to Monkey's filter-memory allocation.
func (v *Version) EntriesPerRun() []int64 {
	var out []int64
	for _, l := range v.Levels {
		for _, r := range l.Runs {
			out = append(out, int64(r.NumEntries()))
		}
	}
	return out
}

// PushRun prepends a run to the level (newest first) and returns the
// new version.
func (v *Version) PushRun(level int, r *Run) *Version {
	nv := v.Clone()
	l := nv.Levels[level]
	l.Runs = append([]*Run{r}, l.Runs...)
	return nv
}

// ReplaceRuns removes the identified runs/files and installs newRun in
// their place. removed maps level → file numbers to drop. newRun may be
// nil (pure deletion, e.g. when every entry was garbage-collected).
// Runs left empty by the removal are dropped. The new run is appended
// at newLevel as the *oldest* run (compaction results hold the oldest
// data of their level).
func (v *Version) ReplaceRuns(removed map[int][]uint64, newLevel int, newRun *Run) *Version {
	nv := v.Clone()
	drop := make(map[uint64]bool)
	for _, nums := range removed {
		for _, n := range nums {
			drop[n] = true
		}
	}
	for _, l := range nv.Levels {
		var keptRuns []*Run
		for _, r := range l.Runs {
			var kept []*FileMeta
			for _, f := range r.Files {
				if !drop[f.Num] {
					kept = append(kept, f)
				}
			}
			if len(kept) > 0 {
				keptRuns = append(keptRuns, &Run{Files: kept})
			}
		}
		l.Runs = keptRuns
	}
	if newRun != nil && len(newRun.Files) > 0 {
		l := nv.Levels[newLevel]
		l.Runs = append(l.Runs, newRun)
	}
	return nv
}

// ApplyCompaction removes the job's input files and installs the output
// files at targetLevel. If tiered, the outputs form a new run placed as
// the level's *newest*: by the LSM invariant, data merged down from the
// shallower level is more recent than every run already resident in the
// target, so the new run must shadow them. Otherwise (leveled target)
// the outputs are merged into the level's single run in key order (the
// inputs included every overlapping target file, so the result stays
// non-overlapping). Returns the new version.
func (v *Version) ApplyCompaction(removed map[int][]uint64, targetLevel int, outputs []*FileMeta, tiered bool) *Version {
	nv := v.ReplaceRuns(removed, targetLevel, nil)
	if len(outputs) == 0 {
		return nv
	}
	l := nv.Levels[targetLevel]
	if tiered || len(l.Runs) == 0 {
		l.Runs = append([]*Run{{Files: outputs}}, l.Runs...)
		return nv
	}
	// Merge outputs into the level's single run by Smallest key.
	run := l.Runs[len(l.Runs)-1]
	merged := make([]*FileMeta, 0, len(run.Files)+len(outputs))
	i, j := 0, 0
	for i < len(run.Files) && j < len(outputs) {
		if bytes.Compare(run.Files[i].Smallest, outputs[j].Smallest) < 0 {
			merged = append(merged, run.Files[i])
			i++
		} else {
			merged = append(merged, outputs[j])
			j++
		}
	}
	merged = append(merged, run.Files[i:]...)
	merged = append(merged, outputs[j:]...)
	run.Files = merged
	return nv
}

// Check validates structural invariants: files within a run sorted and
// non-overlapping, levels within bounds. It returns the first violation
// found, or nil. Used by tests and the engine's paranoid mode.
func (v *Version) Check() error {
	for li, l := range v.Levels {
		for ri, r := range l.Runs {
			for fi, f := range r.Files {
				if bytes.Compare(f.Smallest, f.Largest) > 0 {
					return fmt.Errorf("L%d run %d file %s: inverted bounds", li, ri, f)
				}
				if fi > 0 {
					prev := r.Files[fi-1]
					if bytes.Compare(prev.Largest, f.Smallest) >= 0 {
						return fmt.Errorf("L%d run %d: files %s and %s overlap", li, ri, prev, f)
					}
				}
			}
		}
	}
	return nil
}
